#include "xml/path.h"

#include <unordered_set>

namespace nimble {

namespace {

void CollectMatchingDescendants(const Node& node, const std::string& name,
                                std::vector<NodePtr>* out) {
  for (const NodePtr& child : node.children()) {
    if (child->is_element()) {
      if (name == "*" || child->name() == name) out->push_back(child);
      CollectMatchingDescendants(*child, name, out);
    }
  }
}

}  // namespace

Result<Path> Path::Parse(std::string_view text) {
  Path path;
  size_t i = 0;
  if (text.empty()) {
    return Status::InvalidArgument("empty path");
  }
  while (i < text.size()) {
    PathStep step;
    if (text.substr(i, 2) == "//") {
      step.axis = PathStep::Axis::kDescendant;
      i += 2;
    } else if (text[i] == '/') {
      ++i;
    }
    if (i >= text.size()) {
      return Status::InvalidArgument("path ends with '/': " +
                                     std::string(text));
    }
    size_t end = text.find('/', i);
    std::string_view token =
        text.substr(i, end == std::string_view::npos ? end : end - i);
    if (token.empty()) {
      return Status::InvalidArgument("empty path step in: " +
                                     std::string(text));
    }
    if (token == "..") {
      step.axis = PathStep::Axis::kParent;
    } else if (token[0] == '@') {
      step.axis = PathStep::Axis::kAttribute;
      step.name = std::string(token.substr(1));
      if (step.name.empty()) {
        return Status::InvalidArgument("'@' without attribute name");
      }
    } else if (token == "text()") {
      step.axis = PathStep::Axis::kText;
    } else {
      step.name = std::string(token);
    }
    path.steps_.push_back(std::move(step));
    i = (end == std::string_view::npos) ? text.size() : end;
  }
  // Attribute/text steps must be terminal.
  for (size_t s = 0; s + 1 < path.steps_.size(); ++s) {
    PathStep::Axis axis = path.steps_[s].axis;
    if (axis == PathStep::Axis::kAttribute || axis == PathStep::Axis::kText) {
      return Status::InvalidArgument(
          "attribute/text() step must be the last step: " + std::string(text));
    }
  }
  return path;
}

std::vector<NodePtr> Path::SelectNodes(const NodePtr& context) const {
  std::vector<NodePtr> current = {context};
  for (const PathStep& step : steps_) {
    if (step.axis == PathStep::Axis::kAttribute ||
        step.axis == PathStep::Axis::kText) {
      break;  // Terminal value steps do not produce nodes.
    }
    std::vector<NodePtr> next;
    std::unordered_set<const Node*> seen;
    for (const NodePtr& node : current) {
      std::vector<NodePtr> expanded;
      switch (step.axis) {
        case PathStep::Axis::kChild:
          for (const NodePtr& child : node->children()) {
            if (child->is_element() &&
                (step.name == "*" || child->name() == step.name)) {
              expanded.push_back(child);
            }
          }
          break;
        case PathStep::Axis::kDescendant:
          CollectMatchingDescendants(*node, step.name, &expanded);
          break;
        case PathStep::Axis::kParent:
          if (node->parent() != nullptr) {
            // Parent pointers are non-owning; recover a shared_ptr.
            expanded.push_back(node->parent()->shared_from_this());
          }
          break;
        default:
          break;
      }
      for (NodePtr& n : expanded) {
        if (seen.insert(n.get()).second) next.push_back(std::move(n));
      }
    }
    current = std::move(next);
  }
  return current;
}

std::vector<Value> Path::SelectValues(const NodePtr& context) const {
  // Split off a terminal @attr / text() step if present.
  const PathStep* terminal = nullptr;
  if (!steps_.empty()) {
    const PathStep& last = steps_.back();
    if (last.axis == PathStep::Axis::kAttribute ||
        last.axis == PathStep::Axis::kText) {
      terminal = &last;
    }
  }
  std::vector<NodePtr> nodes;
  if (terminal != nullptr && steps_.size() == 1) {
    nodes = {context};
  } else {
    nodes = SelectNodes(context);
  }
  std::vector<Value> out;
  out.reserve(nodes.size());
  for (const NodePtr& node : nodes) {
    if (terminal == nullptr) {
      out.push_back(node->ScalarValue());
    } else if (terminal->axis == PathStep::Axis::kAttribute) {
      if (node->HasAttribute(terminal->name)) {
        out.push_back(node->GetAttribute(terminal->name));
      }
    } else {
      out.push_back(node->ScalarValue());
    }
  }
  return out;
}

Value Path::SelectFirstValue(const NodePtr& context) const {
  std::vector<Value> values = SelectValues(context);
  return values.empty() ? Value::Null() : values.front();
}

std::string Path::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps_.size(); ++i) {
    const PathStep& step = steps_[i];
    if (step.axis == PathStep::Axis::kDescendant) {
      out += "//";
    } else if (i > 0) {
      out += "/";
    }
    switch (step.axis) {
      case PathStep::Axis::kParent:
        out += "..";
        break;
      case PathStep::Axis::kAttribute:
        out += "@" + step.name;
        break;
      case PathStep::Axis::kText:
        out += "text()";
        break;
      default:
        out += step.name;
    }
  }
  return out;
}

}  // namespace nimble
