#ifndef NIMBLE_XML_PARSER_H_
#define NIMBLE_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/node.h"

namespace nimble {

/// Options controlling document parsing.
struct XmlParseOptions {
  /// When true (default), text content is parsed into typed scalars via
  /// Value::Infer — the Nimble model's structured ingestion. When false,
  /// all text stays as strings (pure-XML mode; used by the E7/A3 ablation).
  bool infer_types = true;
  /// When true, whitespace-only text between elements is dropped.
  bool strip_ignorable_whitespace = true;
};

/// Parses one well-formed XML document into a Node tree. Supports elements,
/// attributes (single or double quoted), character data, the five predefined
/// entities plus decimal/hex character references, comments, CDATA sections,
/// processing instructions (skipped) and an optional XML declaration.
/// Namespaces are treated literally (prefixes kept in names).
Result<NodePtr> ParseXml(std::string_view input,
                         const XmlParseOptions& options = {});

/// Unescapes the predefined XML entities and character references in `text`.
Result<std::string> UnescapeXml(std::string_view text);

/// Escapes text content for embedding in XML ('&', '<', '>').
std::string EscapeXmlText(std::string_view text);

/// Escapes attribute values (adds '"' to the text escapes).
std::string EscapeXmlAttribute(std::string_view text);

}  // namespace nimble

#endif  // NIMBLE_XML_PARSER_H_
