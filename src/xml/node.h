#ifndef NIMBLE_XML_NODE_H_
#define NIMBLE_XML_NODE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "xml/value.h"

namespace nimble {

class Node;
using NodePtr = std::shared_ptr<Node>;
/// Shared handle to an immutable (frozen) node — see Node::Freeze().
using ConstNodePtr = std::shared_ptr<const Node>;

/// Node kinds in the Nimble tree model.
enum class NodeKind {
  kElement,  ///< Named element with attributes and ordered children.
  kText,     ///< Leaf carrying a typed scalar Value (paper §3.1: the model
             ///< is "slightly more structured" than pure XML — leaves are
             ///< typed, so relational data keeps its types).
};

/// An ordered-tree node. Document order is the order of the `children()`
/// vector — the paper stresses that XML documents are intrinsically ordered
/// (§4), and all navigation preserves it.
///
/// Ownership: children are owned via shared_ptr; `parent()` is a non-owning
/// back-pointer kept consistent by the mutation API, enabling the paper's
/// "up, down and sideways" navigation.
class Node : public std::enable_shared_from_this<Node> {
 public:
  /// Creates an element node.
  static NodePtr Element(std::string name);
  /// Creates a text node carrying `value`.
  static NodePtr Text(Value value);
  /// Creates a text node from raw text, inferring a scalar type.
  static NodePtr TextFromRaw(const std::string& raw);

  NodeKind kind() const { return kind_; }
  bool is_element() const { return kind_ == NodeKind::kElement; }
  bool is_text() const { return kind_ == NodeKind::kText; }

  /// Element name; empty for text nodes.
  const std::string& name() const { return name_; }

  /// Typed scalar payload; null for elements.
  const Value& value() const { return value_; }

  /// Non-owning parent pointer (nullptr for roots).
  Node* parent() const { return parent_; }

  const std::vector<NodePtr>& children() const { return children_; }
  const std::vector<std::pair<std::string, Value>>& attributes() const {
    return attributes_;
  }

  // ---- Mutation -----------------------------------------------------------

  /// Appends `child`, setting its parent pointer. Returns `child` for
  /// chaining. The child must not already have a parent.
  NodePtr AddChild(NodePtr child);

  /// Convenience: appends `<name>value</name>` and returns the new element.
  NodePtr AddScalarChild(const std::string& name, Value value);

  /// Sets (or replaces) an attribute.
  void SetAttribute(const std::string& name, Value value);

  /// Removes the child at `index`.
  void RemoveChild(size_t index);

  /// Detaches and returns every child (parent pointers cleared), leaving
  /// this node empty — splices subtrees between documents without cloning.
  std::vector<NodePtr> TakeChildren();

  // ---- Read helpers -------------------------------------------------------

  /// First child element named `name`, or nullptr.
  NodePtr FindChild(const std::string& name) const;

  /// All child elements named `name`, in document order.
  std::vector<NodePtr> FindChildren(const std::string& name) const;

  /// Attribute lookup; null Value if absent.
  Value GetAttribute(const std::string& name) const;
  bool HasAttribute(const std::string& name) const;

  /// Concatenation of all descendant text, in document order.
  std::string TextContent() const;

  /// The typed scalar for "simple content" elements: if this element's
  /// children are exactly one text node, its Value; otherwise
  /// Value::String(TextContent()).
  Value ScalarValue() const;

  /// Next/previous sibling in the parent's child list ("sideways"
  /// navigation); nullptr at the ends or for roots.
  NodePtr NextSibling() const;
  NodePtr PrevSibling() const;

  /// Number of nodes in this subtree (including this node).
  size_t SubtreeSize() const;

  /// Structural deep equality (names, attributes, values, child order).
  bool DeepEquals(const Node& other) const;

  /// Deep copy with fresh parent pointers. Copies are always thawed
  /// (mutable), even when cloned from a frozen snapshot — this is the
  /// copy-on-write escape hatch for cached documents.
  NodePtr Clone() const;

  // ---- Immutable snapshots ------------------------------------------------

  /// Marks this whole subtree immutable and returns a shared const handle.
  /// Freezing is O(subtree) flag writes — no allocation, no copying — and
  /// is how the result cache shares one document among many concurrent
  /// readers: a frozen tree is safe to read from any number of threads.
  /// Freezing is sticky (there is no thaw-in-place); mutate via Clone().
  /// Idempotent: freezing a frozen node is O(1).
  ConstNodePtr Freeze();

  /// True once this node belongs to a frozen snapshot. Mutation APIs
  /// assert against frozen nodes.
  bool frozen() const { return frozen_; }

  /// Rough heap footprint of this subtree in bytes (node structs, names,
  /// string payloads, attribute and child vectors). Drives the result
  /// cache's byte-budget accounting.
  size_t EstimatedBytes() const;

  /// Collects every descendant element (not including this node) in
  /// document order into `out`.
  void CollectDescendants(std::vector<NodePtr>* out) const;

 private:
  explicit Node(NodeKind kind) : kind_(kind) {}

  NodeKind kind_;
  bool frozen_ = false;
  std::string name_;
  Value value_;
  Node* parent_ = nullptr;
  std::vector<std::pair<std::string, Value>> attributes_;
  std::vector<NodePtr> children_;
};

}  // namespace nimble

#endif  // NIMBLE_XML_NODE_H_
