#ifndef NIMBLE_XML_PATH_H_
#define NIMBLE_XML_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace nimble {

/// One step of a navigation path.
struct PathStep {
  enum class Axis {
    kChild,       ///< `name` or `*` — child elements.
    kDescendant,  ///< `//name` — descendants at any depth.
    kParent,      ///< `..` — up navigation.
    kAttribute,   ///< `@name` — terminal, yields attribute values.
    kText,        ///< `text()` — terminal, yields the typed scalar.
  };
  Axis axis = Axis::kChild;
  std::string name;  ///< element/attribute name; "*" matches any element.
};

/// A parsed navigation path, e.g. "order/item/@sku" or "books//title".
/// Covers the paper's "navigation-style access … up, down and sideways"
/// (§4): child/descendant axes move down, `..` moves up, and the Node
/// sibling API provides sideways movement.
class Path {
 public:
  /// Parses a path; steps are separated by '/'; '//' selects descendants.
  static Result<Path> Parse(std::string_view text);

  const std::vector<PathStep>& steps() const { return steps_; }

  /// All element nodes reached from `context`, in document order without
  /// duplicates. Attribute/text() terminal steps are ignored here.
  std::vector<NodePtr> SelectNodes(const NodePtr& context) const;

  /// Like SelectNodes but yields scalars: the attribute value / text value
  /// for terminal `@attr` / `text()` steps, otherwise each reached
  /// element's ScalarValue().
  std::vector<Value> SelectValues(const NodePtr& context) const;

  /// First selected value or null.
  Value SelectFirstValue(const NodePtr& context) const;

  /// Reconstructs the textual form.
  std::string ToString() const;

 private:
  std::vector<PathStep> steps_;
};

}  // namespace nimble

#endif  // NIMBLE_XML_PATH_H_
