#include "xml/value.h"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <functional>

#include "common/strings.h"

namespace nimble {

namespace {

// Type rank for heterogeneous ordering: null < bool < number < string.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
  }
  return 4;
}

bool ParseFullInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseFullDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

Value Value::Infer(const std::string& text) {
  int64_t i;
  if (ParseFullInt(text, &i)) return Value::Int(i);
  double d;
  if (ParseFullDouble(text, &d)) return Value::Double(d);
  if (text == "true") return Value::Bool(true);
  if (text == "false") return Value::Bool(false);
  return Value::String(text);
}

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kInt;
    case 3:
      return ValueType::kDouble;
    default:
      return ValueType::kString;
  }
}

double Value::NumericValue() const {
  assert(is_numeric());
  return is_int() ? static_cast<double>(AsInt()) : AsDouble();
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      // Trim trailing zeros but keep at least one decimal digit so doubles
      // remain visually distinct from ints.
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.12g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "";
}

Result<int64_t> Value::ToInt() const {
  switch (type()) {
    case ValueType::kInt:
      return AsInt();
    case ValueType::kDouble:
      return static_cast<int64_t>(AsDouble());
    case ValueType::kBool:
      return static_cast<int64_t>(AsBool() ? 1 : 0);
    case ValueType::kString: {
      int64_t i;
      if (ParseFullInt(AsString(), &i)) return i;
      return Status::TypeError("cannot convert '" + AsString() + "' to int");
    }
    case ValueType::kNull:
      return Status::TypeError("cannot convert null to int");
  }
  return Status::Internal("unreachable");
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    case ValueType::kBool:
      return AsBool() ? 1.0 : 0.0;
    case ValueType::kString: {
      double d;
      if (ParseFullDouble(AsString(), &d)) return d;
      return Status::TypeError("cannot convert '" + AsString() + "' to double");
    }
    case ValueType::kNull:
      return Status::TypeError("cannot convert null to double");
  }
  return Status::Internal("unreachable");
}

bool Value::Truthy() const {
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return AsBool();
    case ValueType::kInt:
      return AsInt() != 0;
    case ValueType::kDouble:
      return AsDouble() != 0.0;
    case ValueType::kString:
      return !AsString().empty();
  }
  return false;
}

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      int a = AsBool() ? 1 : 0;
      int b = other.AsBool() ? 1 : 0;
      return a - b;
    }
    case ValueType::kInt:
    case ValueType::kDouble: {
      // Compare exactly when both ints to avoid double rounding.
      if (is_int() && other.is_int()) {
        int64_t a = AsInt(), b = other.AsInt();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      double a = NumericValue(), b = other.NumericValue();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString:
      return AsString().compare(other.AsString());
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9B9773E99E3779B9ULL;
    case ValueType::kBool:
      return AsBool() ? 0x2545F4914F6CDD1DULL : 0x123456789ABCDEF0ULL;
    case ValueType::kInt:
    case ValueType::kDouble: {
      // Hash the numeric family uniformly via double so 3 == 3.0 hash equal.
      double d = NumericValue();
      if (d == 0.0) d = 0.0;  // normalise -0.0
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

}  // namespace nimble
