#include "materialize/result_cache.h"

namespace nimble {
namespace materialize {

NodePtr ResultCache::Lookup(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (ttl_micros_ > 0 &&
      clock_->NowMicros() - it->second->inserted_at_micros >= ttl_micros_) {
    lru_.erase(it->second);
    entries_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return nullptr;
  }
  // Promote to MRU.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->document->Clone();
}

void ResultCache::Insert(const std::string& key, const NodePtr& document) {
  if (capacity_ == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->document = document->Clone();
    it->second->inserted_at_micros = clock_->NowMicros();
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.insertions;
    return;
  }
  if (entries_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    entries_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, document->Clone(), clock_->NowMicros()});
  entries_[key] = lru_.begin();
  ++stats_.insertions;
}

bool ResultCache::Invalidate(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  lru_.erase(it->second);
  entries_.erase(it);
  return true;
}

void ResultCache::Clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace materialize
}  // namespace nimble
