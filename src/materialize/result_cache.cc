#include "materialize/result_cache.h"

#include <algorithm>

namespace nimble {
namespace materialize {

ResultCache::ResultCache(ResultCacheOptions options, Clock* clock)
    : options_(options), clock_(clock) {
  if (options_.shards == 0) options_.shards = 1;
  shard_budget_ = options_.max_bytes / options_.shards;
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

int64_t ResultCache::ExpiryFor(int64_t ttl_micros) const {
  int64_t ttl = ttl_micros < 0 ? options_.ttl_micros : ttl_micros;
  return ttl <= 0 ? 0 : clock_->NowMicros() + ttl;
}

ConstNodePtr ResultCache::LookupLocked(Shard& shard, const std::string& key,
                                       bool count_miss) {
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    if (count_miss) ++shard.stats.misses;
    return nullptr;
  }
  if (it->second->expires_at_micros != 0 &&
      clock_->NowMicros() >= it->second->expires_at_micros) {
    ++shard.stats.expirations;
    EraseLocked(shard, it->second);
    if (count_miss) ++shard.stats.misses;
    return nullptr;
  }
  // Promote to MRU; the snapshot is shared, not cloned — an O(1) hit.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.stats.hits;
  return it->second->snapshot;
}

void ResultCache::EraseLocked(Shard& shard, std::list<Entry>::iterator it) {
  shard.bytes -= it->bytes;
  shard.entries.erase(it->key);
  shard.lru.erase(it);
}

void ResultCache::InsertLocked(Shard& shard, const std::string& key,
                               ConstNodePtr snapshot,
                               std::vector<std::string> tags,
                               int64_t ttl_micros) {
  size_t cost = snapshot->EstimatedBytes();
  if (cost > shard_budget_) {
    // Oversized documents would evict the whole shard for one entry.
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) EraseLocked(shard, it->second);
    return;
  }
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) EraseLocked(shard, it->second);
  while (shard.bytes + cost > shard_budget_ && !shard.lru.empty()) {
    ++shard.stats.evictions;
    EraseLocked(shard, std::prev(shard.lru.end()));
  }
  shard.lru.push_front(Entry{key, std::move(snapshot), cost,
                             ExpiryFor(ttl_micros), std::move(tags)});
  shard.entries[key] = shard.lru.begin();
  shard.bytes += cost;
  ++shard.stats.insertions;
}

ConstNodePtr ResultCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  return LookupLocked(shard, key, /*count_miss=*/true);
}

void ResultCache::Insert(const std::string& key, const NodePtr& document,
                         std::vector<std::string> tags, int64_t ttl_micros) {
  if (document == nullptr) return;
  InsertSnapshot(key, document->Freeze(), std::move(tags), ttl_micros);
}

void ResultCache::InsertSnapshot(const std::string& key, ConstNodePtr snapshot,
                                 std::vector<std::string> tags,
                                 int64_t ttl_micros) {
  if (snapshot == nullptr) return;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  InsertLocked(shard, key, std::move(snapshot), std::move(tags), ttl_micros);
}

Result<ConstNodePtr> ResultCache::LookupOrCompute(const std::string& key,
                                                  const ComputeFn& compute,
                                                  bool* executed_compute) {
  if (executed_compute != nullptr) *executed_compute = false;
  Shard& shard = ShardFor(key);
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    MutexLock lock(shard.mu);
    // Waiters do not count as misses — only the leader pays the fetch.
    ConstNodePtr snapshot = LookupLocked(shard, key, /*count_miss=*/false);
    if (snapshot != nullptr) return snapshot;
    auto it = shard.flights.find(key);
    if (it != shard.flights.end()) {
      flight = it->second;
      ++shard.stats.coalesced;
    } else {
      flight = std::make_shared<InFlight>();
      shard.flights.emplace(key, flight);
      leader = true;
      ++shard.stats.misses;
    }
  }

  if (!leader) {
    MutexLock wait_lock(flight->mu);
    while (!flight->done) flight->cv.Wait(flight->mu);
    return *flight->outcome;
  }

  if (executed_compute != nullptr) *executed_compute = true;
  Result<Computed> computed = compute();
  std::optional<Result<ConstNodePtr>> outcome;
  if (computed.ok() && computed->document != nullptr) {
    ConstNodePtr snapshot = computed->document->Freeze();
    MutexLock lock(shard.mu);
    if (computed->cacheable) {
      InsertLocked(shard, key, snapshot, std::move(computed->tags),
                   computed->ttl_micros);
    }
    shard.flights.erase(key);
    outcome = snapshot;
  } else {
    Status error = computed.ok()
                       ? Status::Internal("compute returned no document")
                       : computed.status();
    MutexLock lock(shard.mu);
    shard.flights.erase(key);
    outcome = std::move(error);
  }
  {
    MutexLock publish_lock(flight->mu);
    flight->outcome = *outcome;
    flight->done = true;
  }
  flight->cv.NotifyAll();
  return *outcome;
}

bool ResultCache::Invalidate(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  ++shard.stats.invalidations;
  EraseLocked(shard, it->second);
  return true;
}

size_t ResultCache::InvalidateTag(const std::string& tag) {
  size_t dropped = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      auto next = std::next(it);
      if (std::find(it->tags.begin(), it->tags.end(), tag) != it->tags.end()) {
        ++shard->stats.invalidations;
        EraseLocked(*shard, it);
        ++dropped;
      }
      it = next;
    }
  }
  return dropped;
}

void ResultCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->stats.invalidations += shard->lru.size();
    shard->lru.clear();
    shard->entries.clear();
    shard->bytes = 0;
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

size_t ResultCache::bytes() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->bytes;
  }
  return total;
}

CacheStats ResultCache::stats() const {
  CacheStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.coalesced += shard->stats.coalesced;
    total.insertions += shard->stats.insertions;
    total.evictions += shard->stats.evictions;
    total.expirations += shard->stats.expirations;
    total.invalidations += shard->stats.invalidations;
    total.entries += shard->lru.size();
    total.bytes += shard->bytes;
  }
  return total;
}

void ResultCache::ResetStats() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->stats = CacheStats{};
  }
}

}  // namespace materialize
}  // namespace nimble
