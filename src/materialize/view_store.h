#ifndef NIMBLE_MATERIALIZE_VIEW_STORE_H_
#define NIMBLE_MATERIALIZE_VIEW_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/engine.h"
#include "metadata/catalog.h"

namespace nimble {
namespace materialize {

/// When a materialized view's local copy is refreshed.
struct MaterializationPolicy {
  enum class Refresh {
    kManualOnly,  ///< only explicit Refresh() calls.
    kOnStale,     ///< on serve, re-run if any source version changed.
    kTtl,         ///< on serve, re-run if older than ttl_micros.
  };
  Refresh refresh = Refresh::kOnStale;
  int64_t ttl_micros = 60'000'000;
};

/// Serving statistics per view.
struct ViewStoreStats {
  size_t serves = 0;
  size_t refreshes = 0;
  size_t stale_serves = 0;  ///< serves that returned out-of-date data.
};

/// Local materialization of mediated views — the paper's middle way
/// between warehousing and virtual integration (§3.3): "one materializes
/// views over the mediated schema" instead of designing a warehouse
/// schema, and "the query processor knows to make use of local copies of
/// data when available".
class MaterializedViewStore {
 public:
  /// All pointers must outlive the store.
  MaterializedViewStore(metadata::Catalog* catalog,
                        core::IntegrationEngine* engine, Clock* clock)
      : catalog_(catalog), engine_(engine), clock_(clock) {}

  MaterializedViewStore(const MaterializedViewStore&) = delete;
  MaterializedViewStore& operator=(const MaterializedViewStore&) = delete;

  /// Starts materializing `view_name` (must be defined in the catalog);
  /// performs the initial load now.
  Status Materialize(const std::string& view_name,
                     const MaterializationPolicy& policy = {});

  /// Serves the view: from the local copy when fresh per policy, else
  /// refreshing first. Views that were never materialized execute
  /// virtually through the engine.
  Result<core::QueryResult> Query(const std::string& view_name);

  /// Forces a reload from the sources.
  Status Refresh(const std::string& view_name);

  /// Removes the local copy (subsequent queries run virtually).
  Status Drop(const std::string& view_name);

  bool IsMaterialized(const std::string& view_name) const;

  /// True when any underlying source changed since the last refresh.
  /// NotFound if the view is not materialized.
  Result<bool> IsStale(const std::string& view_name) const;

  /// Age of the local copy in microseconds (virtual clock).
  Result<int64_t> AgeMicros(const std::string& view_name) const;

  const ViewStoreStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ViewStoreStats{}; }

  /// Total result-tree nodes held across materialized views (the storage
  /// cost metric used by view selection, E2).
  size_t StorageCost() const;

 private:
  struct Entry {
    NodePtr document;
    core::ExecutionReport load_report;
    MaterializationPolicy policy;
    int64_t refreshed_at_micros = 0;
    std::map<std::string, uint64_t> source_versions;
  };

  Status LoadEntry(const std::string& view_name, Entry* entry);
  bool EntryIsStale(const Entry& entry) const;

  metadata::Catalog* catalog_;
  core::IntegrationEngine* engine_;
  Clock* clock_;
  std::map<std::string, Entry> entries_;
  ViewStoreStats stats_;
};

}  // namespace materialize
}  // namespace nimble

#endif  // NIMBLE_MATERIALIZE_VIEW_STORE_H_
