#include "materialize/view_store.h"

#include "xmlql/parser.h"

namespace nimble {
namespace materialize {

Status MaterializedViewStore::Materialize(
    const std::string& view_name, const MaterializationPolicy& policy) {
  if (catalog_->view(view_name) == nullptr) {
    return Status::NotFound("no view '" + view_name + "' in the catalog");
  }
  Entry entry;
  entry.policy = policy;
  NIMBLE_RETURN_IF_ERROR(LoadEntry(view_name, &entry));
  entries_[view_name] = std::move(entry);
  return Status::OK();
}

Status MaterializedViewStore::LoadEntry(const std::string& view_name,
                                        Entry* entry) {
  const metadata::MediatedView* view = catalog_->view(view_name);
  if (view == nullptr) return Status::NotFound("no view '" + view_name + "'");
  Result<core::QueryResult> result = engine_->ExecuteText(view->query_text);
  if (!result.ok()) return result.status();
  entry->document = result->document;
  entry->load_report = result->report;
  entry->refreshed_at_micros = clock_->NowMicros();
  entry->source_versions.clear();
  for (const std::string& source_name : view->source_dependencies) {
    connector::Connector* source = catalog_->source(source_name);
    if (source != nullptr) {
      entry->source_versions[source_name] = source->DataVersion();
    }
  }
  ++stats_.refreshes;
  return Status::OK();
}

bool MaterializedViewStore::EntryIsStale(const Entry& entry) const {
  for (const auto& [source_name, version] : entry.source_versions) {
    connector::Connector* source = catalog_->source(source_name);
    if (source != nullptr && source->DataVersion() != version) return true;
  }
  return false;
}

Result<core::QueryResult> MaterializedViewStore::Query(
    const std::string& view_name) {
  auto it = entries_.find(view_name);
  if (it == entries_.end()) {
    // Virtual execution: contact the sources every time.
    const metadata::MediatedView* view = catalog_->view(view_name);
    if (view == nullptr) {
      return Status::NotFound("no view '" + view_name + "'");
    }
    ++stats_.serves;
    return engine_->ExecuteText(view->query_text);
  }

  Entry& entry = it->second;
  bool refresh = false;
  switch (entry.policy.refresh) {
    case MaterializationPolicy::Refresh::kManualOnly:
      break;
    case MaterializationPolicy::Refresh::kOnStale:
      refresh = EntryIsStale(entry);
      break;
    case MaterializationPolicy::Refresh::kTtl:
      refresh = clock_->NowMicros() - entry.refreshed_at_micros >=
                entry.policy.ttl_micros;
      break;
  }
  if (refresh) {
    NIMBLE_RETURN_IF_ERROR(LoadEntry(view_name, &entry));
  }

  ++stats_.serves;
  if (EntryIsStale(entry)) ++stats_.stale_serves;

  core::QueryResult result;
  result.document = entry.document->Clone();
  // A local serve ships no rows and spends no source time; report the
  // result size only.
  result.report.result_count = result.document->children().size();
  result.report.completeness = entry.load_report.completeness;
  return result;
}

Status MaterializedViewStore::Refresh(const std::string& view_name) {
  auto it = entries_.find(view_name);
  if (it == entries_.end()) {
    return Status::NotFound("view '" + view_name + "' is not materialized");
  }
  return LoadEntry(view_name, &it->second);
}

Status MaterializedViewStore::Drop(const std::string& view_name) {
  if (entries_.erase(view_name) == 0) {
    return Status::NotFound("view '" + view_name + "' is not materialized");
  }
  return Status::OK();
}

bool MaterializedViewStore::IsMaterialized(
    const std::string& view_name) const {
  return entries_.count(view_name) > 0;
}

Result<bool> MaterializedViewStore::IsStale(
    const std::string& view_name) const {
  auto it = entries_.find(view_name);
  if (it == entries_.end()) {
    return Status::NotFound("view '" + view_name + "' is not materialized");
  }
  return EntryIsStale(it->second);
}

Result<int64_t> MaterializedViewStore::AgeMicros(
    const std::string& view_name) const {
  auto it = entries_.find(view_name);
  if (it == entries_.end()) {
    return Status::NotFound("view '" + view_name + "' is not materialized");
  }
  return clock_->NowMicros() - it->second.refreshed_at_micros;
}

size_t MaterializedViewStore::StorageCost() const {
  size_t total = 0;
  for (const auto& [view_name, entry] : entries_) {
    total += entry.document->SubtreeSize();
  }
  return total;
}

}  // namespace materialize
}  // namespace nimble
