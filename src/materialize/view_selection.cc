#include "materialize/view_selection.h"

#include <algorithm>
#include <numeric>

namespace nimble {
namespace materialize {

double WorkloadCost(const std::vector<ViewCandidate>& candidates,
                    const std::vector<bool>& materialized) {
  double total = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const ViewCandidate& c = candidates[i];
    total += c.query_frequency *
             (materialized[i] ? c.materialized_cost : c.virtual_cost);
  }
  return total;
}

SelectionResult SelectViewsGreedy(const std::vector<ViewCandidate>& candidates,
                                  double storage_budget) {
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    // Benefit density; zero-cost views are infinitely dense (take first).
    const ViewCandidate& ca = candidates[a];
    const ViewCandidate& cb = candidates[b];
    double da = ca.storage_cost > 0 ? ca.Benefit() / ca.storage_cost
                                    : ca.Benefit() * 1e18;
    double db = cb.storage_cost > 0 ? cb.Benefit() / cb.storage_cost
                                    : cb.Benefit() * 1e18;
    return da > db;
  });

  SelectionResult result;
  std::vector<bool> materialized(candidates.size(), false);
  for (size_t index : order) {
    const ViewCandidate& c = candidates[index];
    if (c.Benefit() <= 0) continue;  // never materialize a losing view
    if (result.storage_used + c.storage_cost > storage_budget) continue;
    materialized[index] = true;
    result.storage_used += c.storage_cost;
    result.selected.push_back(c.view_name);
  }
  result.workload_cost = WorkloadCost(candidates, materialized);
  return result;
}

SelectionResult SelectViewsOptimal(
    const std::vector<ViewCandidate>& candidates, double storage_budget) {
  const size_t n = candidates.size();
  SelectionResult best;
  best.workload_cost =
      WorkloadCost(candidates, std::vector<bool>(n, false));

  // Exhaustive subset search; n is small in tests/benches (<= ~20).
  const uint64_t limit = uint64_t{1} << n;
  for (uint64_t mask = 1; mask < limit; ++mask) {
    std::vector<bool> materialized(n, false);
    double storage = 0;
    bool feasible = true;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        materialized[i] = true;
        storage += candidates[i].storage_cost;
        if (storage > storage_budget) {
          feasible = false;
          break;
        }
      }
    }
    if (!feasible) continue;
    double cost = WorkloadCost(candidates, materialized);
    if (cost < best.workload_cost) {
      best.workload_cost = cost;
      best.storage_used = storage;
      best.selected.clear();
      for (size_t i = 0; i < n; ++i) {
        if (materialized[i]) best.selected.push_back(candidates[i].view_name);
      }
    }
  }
  return best;
}

}  // namespace materialize
}  // namespace nimble
