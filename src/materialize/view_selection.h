#ifndef NIMBLE_MATERIALIZE_VIEW_SELECTION_H_
#define NIMBLE_MATERIALIZE_VIEW_SELECTION_H_

#include <string>
#include <vector>

namespace nimble {
namespace materialize {

/// One candidate view for materialization.
struct ViewCandidate {
  std::string view_name;
  double storage_cost = 0;     ///< local storage consumed if materialized.
  double virtual_cost = 0;     ///< per-query cost served virtually.
  double materialized_cost = 0;  ///< per-query cost served locally.
  double query_frequency = 0;  ///< queries per workload unit.

  /// Workload saving per unit if materialized.
  double Benefit() const {
    return query_frequency * (virtual_cost - materialized_cost);
  }
};

/// What the selection decided.
struct SelectionResult {
  std::vector<std::string> selected;
  double storage_used = 0;
  double workload_cost = 0;  ///< total cost of the workload under the plan.
};

/// Greedy benefit-density selection under a storage budget — the paper's
/// open problem (§3.3: "there is a need for algorithms that decide which
/// data … need to be materialized"), in the lineage of
/// Agrawal/Chaudhuri/Narasayya's automated selection. Candidates are
/// ranked by Benefit()/storage_cost and taken while they fit.
SelectionResult SelectViewsGreedy(const std::vector<ViewCandidate>& candidates,
                                  double storage_budget);

/// Exhaustive optimum (for small candidate sets; used by tests and the E2
/// bench to bound the greedy heuristic's gap).
SelectionResult SelectViewsOptimal(
    const std::vector<ViewCandidate>& candidates, double storage_budget);

/// Workload cost of a fixed selection (helper shared by both searches).
double WorkloadCost(const std::vector<ViewCandidate>& candidates,
                    const std::vector<bool>& materialized);

}  // namespace materialize
}  // namespace nimble

#endif  // NIMBLE_MATERIALIZE_VIEW_SELECTION_H_
