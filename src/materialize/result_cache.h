#ifndef NIMBLE_MATERIALIZE_RESULT_CACHE_H_
#define NIMBLE_MATERIALIZE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "xml/node.h"

namespace nimble {
namespace materialize {

/// Cache statistics (E8 evidence).
struct CacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t insertions = 0;
  size_t evictions = 0;
  size_t expirations = 0;

  double HitRate() const {
    size_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// LRU query-result cache with TTL expiry, keyed by query text — the
/// "query caching and other performance tuning capabilities" of §2.1/§4.
/// Entries store cloned result documents so callers can mutate freely.
class ResultCache {
 public:
  /// `capacity` in entries; `ttl_micros` <= 0 disables expiry.
  ResultCache(size_t capacity, int64_t ttl_micros, Clock* clock)
      : capacity_(capacity), ttl_micros_(ttl_micros), clock_(clock) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns a clone of the cached document, or nullptr on miss/expiry.
  NodePtr Lookup(const std::string& key);

  /// Inserts (or replaces) an entry, evicting the LRU entry when full.
  void Insert(const std::string& key, const NodePtr& document);

  /// Drops one entry; false if absent.
  bool Invalidate(const std::string& key);
  void Clear();

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

 private:
  struct Entry {
    std::string key;
    NodePtr document;
    int64_t inserted_at_micros;
  };

  size_t capacity_;
  int64_t ttl_micros_;
  Clock* clock_;
  std::list<Entry> lru_;  ///< front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  CacheStats stats_;
};

}  // namespace materialize
}  // namespace nimble

#endif  // NIMBLE_MATERIALIZE_RESULT_CACHE_H_
