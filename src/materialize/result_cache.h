#ifndef NIMBLE_MATERIALIZE_RESULT_CACHE_H_
#define NIMBLE_MATERIALIZE_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "xml/node.h"

namespace nimble {
namespace materialize {

/// Cache statistics (E8 evidence). Counters are cumulative since the last
/// ResetStats(); `entries`/`bytes` are point-in-time gauges.
struct CacheStats {
  size_t hits = 0;
  size_t misses = 0;         ///< includes singleflight leaders, not waiters.
  size_t coalesced = 0;      ///< singleflight waiters served by a leader.
  size_t insertions = 0;
  size_t evictions = 0;      ///< dropped to fit the byte budget.
  size_t expirations = 0;    ///< dropped because their TTL elapsed.
  size_t invalidations = 0;  ///< dropped by Invalidate/InvalidateTag/Clear.
  size_t entries = 0;        ///< gauge: live entries.
  size_t bytes = 0;          ///< gauge: estimated bytes of live entries.

  double HitRate() const {
    size_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// ResultCache configuration.
struct ResultCacheOptions {
  /// Total byte budget across all shards (estimated document bytes);
  /// 0 disables storage (lookups always miss, computes still coalesce).
  size_t max_bytes = 8u << 20;
  /// Default entry TTL; <= 0 means entries never expire.
  int64_t ttl_micros = 0;
  /// Lock shards (each with its own mutex, LRU list and byte budget).
  /// Clamped to at least 1.
  size_t shards = 8;
};

/// Sharded LRU query-result cache with TTL expiry and byte-budget capacity
/// accounting — the "query caching and other performance tuning
/// capabilities" of §2.1/§4, rebuilt for the concurrent execution layer:
///
///  * **Zero-copy hits.** Entries hold *frozen* document snapshots
///    (Node::Freeze). A hit returns the shared snapshot in O(1) instead of
///    deep-cloning an O(result-size) tree; callers that must mutate a
///    cached answer Clone() it themselves (copy-on-write).
///  * **Thread safety.** Every operation is safe from any thread; state is
///    split across `shards` lock shards so concurrent hits on different
///    keys do not contend.
///  * **Singleflight.** LookupOrCompute collapses N concurrent identical
///    misses into one compute: a single leader executes, the other callers
///    block until the leader publishes its snapshot (or error).
///  * **Tag invalidation.** Entries carry tags (source names); a Catalog
///    update hook calls InvalidateTag(source) to drop every answer that
///    depended on that source.
class ResultCache {
 public:
  ResultCache(ResultCacheOptions options, Clock* clock);

  /// Legacy-shaped convenience constructor: budget in bytes, default TTL.
  ResultCache(size_t max_bytes, int64_t ttl_micros, Clock* clock)
      : ResultCache(ResultCacheOptions{max_bytes, ttl_micros, 8}, clock) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the shared frozen snapshot, or nullptr on miss/expiry. O(1).
  ConstNodePtr Lookup(const std::string& key);

  /// Inserts (or replaces) an entry. The document is frozen in place (the
  /// caller's handle keeps working for reads) and shared, not cloned.
  /// `tags` drive InvalidateTag; `ttl_micros` < 0 means "use the cache
  /// default", 0 means "never expires". Documents larger than a shard's
  /// byte budget are not stored.
  void Insert(const std::string& key, const NodePtr& document,
              std::vector<std::string> tags = {}, int64_t ttl_micros = -1);

  /// As Insert, for an already-frozen snapshot.
  void InsertSnapshot(const std::string& key, ConstNodePtr snapshot,
                      std::vector<std::string> tags = {},
                      int64_t ttl_micros = -1);

  /// What a singleflight leader's compute returns.
  struct Computed {
    NodePtr document;            ///< frozen by the cache before publishing.
    bool cacheable = true;       ///< false: share with waiters, don't store.
    std::vector<std::string> tags;
    int64_t ttl_micros = -1;     ///< per-entry TTL; -1 = cache default.
  };
  using ComputeFn = std::function<Result<Computed>()>;

  /// Hit: returns the snapshot. Miss: the first caller (the leader) runs
  /// `compute` without holding any cache lock; concurrent callers with the
  /// same key block until the leader finishes and share its snapshot (or
  /// its error — errors are never cached). `executed_compute` (optional)
  /// is set to true only for the leader. `compute` must not re-enter the
  /// cache with the same key.
  Result<ConstNodePtr> LookupOrCompute(const std::string& key,
                                       const ComputeFn& compute,
                                       bool* executed_compute = nullptr);

  /// Drops one entry; false if absent.
  bool Invalidate(const std::string& key);

  /// Drops every entry carrying `tag`; returns how many were dropped.
  size_t InvalidateTag(const std::string& tag);

  void Clear();

  size_t size() const;       ///< live entries across all shards.
  size_t bytes() const;      ///< estimated live bytes across all shards.
  size_t max_bytes() const { return options_.max_bytes; }

  /// Aggregated over shards (a consistent-enough snapshot for monitoring).
  CacheStats stats() const;
  void ResetStats();

 private:
  struct Entry {
    std::string key;
    ConstNodePtr snapshot;
    size_t bytes = 0;
    int64_t expires_at_micros = 0;  ///< 0 = never.
    std::vector<std::string> tags;
  };

  /// One singleflight slot: the leader publishes here and notifies.
  struct InFlight {
    Mutex mu{LockRank::kResultCacheFlight, "result_cache.flight"};
    CondVar cv;
    bool done NIMBLE_GUARDED_BY(mu) = false;
    std::optional<Result<ConstNodePtr>> outcome NIMBLE_GUARDED_BY(mu);
  };

  struct Shard {
    mutable Mutex mu{LockRank::kResultCacheShard, "result_cache.shard"};
    /// front = most recently used.
    std::list<Entry> lru NIMBLE_GUARDED_BY(mu);
    std::unordered_map<std::string, std::list<Entry>::iterator> entries
        NIMBLE_GUARDED_BY(mu);
    std::unordered_map<std::string, std::shared_ptr<InFlight>> flights
        NIMBLE_GUARDED_BY(mu);
    size_t bytes NIMBLE_GUARDED_BY(mu) = 0;
    CacheStats stats NIMBLE_GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& key);
  /// Lookup with TTL handling and LRU promotion; caller holds `shard.mu`.
  /// `count_miss` controls whether an absence bumps the miss counter.
  ConstNodePtr LookupLocked(Shard& shard, const std::string& key,
                            bool count_miss) NIMBLE_REQUIRES(shard.mu);
  /// Insert/replace; caller holds `shard.mu`. Evicts LRU entries until the
  /// shard fits its budget.
  void InsertLocked(Shard& shard, const std::string& key,
                    ConstNodePtr snapshot, std::vector<std::string> tags,
                    int64_t ttl_micros) NIMBLE_REQUIRES(shard.mu);
  void EraseLocked(Shard& shard, std::list<Entry>::iterator it)
      NIMBLE_REQUIRES(shard.mu);
  int64_t ExpiryFor(int64_t ttl_micros) const;

  ResultCacheOptions options_;
  size_t shard_budget_;  ///< per-shard byte budget.
  Clock* clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace materialize
}  // namespace nimble

#endif  // NIMBLE_MATERIALIZE_RESULT_CACHE_H_
