#include "dist/coordinator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "algebra/construct.h"
#include "algebra/tuple.h"
#include "dist/merge.h"
#include "xml/serializer.h"
#include "xmlql/parser.h"
#include "xmlql/printer.h"

namespace nimble {
namespace dist {
namespace {

using xmlql::AggregateFn;
using xmlql::Condition;
using xmlql::ElementPattern;
using xmlql::TemplateNode;

/// Slice width for the responsive gather wait: small enough that a cancelled
/// query returns within a few milliseconds, large enough that the poll loop
/// is not a busy-wait.
constexpr int64_t kGatherSliceMicros = 2000;

/// Cancellation poll for the shard gather path. A null flag never cancels.
Status CheckCancelled(const std::atomic<bool>* cancel) {
  if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
    return Status::Cancelled("query cancelled during shard gather");
  }
  return Status::OK();
}

// --- AST deep clones (Query owns unique_ptr subtrees) ----------------------

void ClonePatternInto(const ElementPattern& in, ElementPattern* out) {
  out->tag = in.tag;
  out->descendant = in.descendant;
  out->attributes = in.attributes;
  out->content_variable = in.content_variable;
  out->content_literal = in.content_literal;
  out->element_variable = in.element_variable;
  out->pos = in.pos;
  for (const std::unique_ptr<ElementPattern>& child : in.children) {
    auto clone = std::make_unique<ElementPattern>();
    ClonePatternInto(*child, clone.get());
    out->children.push_back(std::move(clone));
  }
}

std::unique_ptr<TemplateNode> CloneTemplate(const TemplateNode& in) {
  auto out = std::make_unique<TemplateNode>();
  out->kind = in.kind;
  out->tag = in.tag;
  out->attributes = in.attributes;
  out->variable = in.variable;
  out->aggregate = in.aggregate;
  out->text = in.text;
  out->pos = in.pos;
  for (const std::unique_ptr<TemplateNode>& child : in.children) {
    out->children.push_back(CloneTemplate(*child));
  }
  return out;
}

xmlql::Query CloneQuery(const xmlql::Query& in) {
  xmlql::Query out;
  for (const xmlql::PatternClause& pattern : in.patterns) {
    xmlql::PatternClause clause;
    clause.source = pattern.source;
    clause.pos = pattern.pos;
    ClonePatternInto(pattern.root, &clause.root);
    out.patterns.push_back(std::move(clause));
  }
  out.conditions = in.conditions;
  out.group_by = in.group_by;
  out.group_by_pos = in.group_by_pos;
  out.construct = CloneTemplate(*in.construct);
  out.order_by = in.order_by;
  out.limit = in.limit;
  return out;
}

/// "__n…" element names are the coordinator's transport vocabulary
/// (__nsk/__ngk/__nag/__npart); a template already using them could not be
/// told apart from the annotations, so such queries run undistributed.
bool UsesReservedNames(const TemplateNode& node) {
  if (node.kind == TemplateNode::Kind::kElement &&
      node.tag.rfind("__n", 0) == 0) {
    return true;
  }
  for (const std::unique_ptr<TemplateNode>& child : node.children) {
    if (UsesReservedNames(*child)) return true;
  }
  return false;
}

bool PatternHasElementVariable(const ElementPattern& pattern) {
  if (!pattern.element_variable.empty()) return true;
  for (const std::unique_ptr<ElementPattern>& child : pattern.children) {
    if (PatternHasElementVariable(*child)) return true;
  }
  return false;
}

Condition::Op FlipOp(Condition::Op op) {
  switch (op) {
    case Condition::Op::kLt:
      return Condition::Op::kGt;
    case Condition::Op::kLe:
      return Condition::Op::kGe;
    case Condition::Op::kGt:
      return Condition::Op::kLt;
    case Condition::Op::kGe:
      return Condition::Op::kLe;
    default:
      return op;
  }
}

/// The record-level patterns of a branch, shape-resolved the same way the
/// statistics mapper reads them (opt::VariableColumns): a descendant-axis
/// root matches the records itself; otherwise the root matches the
/// collection root and its children match records.
std::vector<const ElementPattern*> RecordPatterns(const ElementPattern& root) {
  std::vector<const ElementPattern*> records;
  if (root.descendant) {
    records.push_back(&root);
    return records;
  }
  for (const std::unique_ptr<ElementPattern>& child : root.children) {
    if (child != nullptr) records.push_back(child.get());
  }
  return records;
}

/// Typed value carried by one transport annotation element: scalar bindings
/// travel as a single typed text child; node bindings (ELEMENT_AS sort
/// keys) travel as the cloned element, compared by its scalar view just as
/// the engine's Sort compares node bindings.
Value AnnotationValue(const Node& annotation) {
  const std::vector<NodePtr>& kids = annotation.children();
  if (kids.size() == 1 && kids[0] != nullptr && kids[0]->is_element()) {
    return kids[0]->ScalarValue();
  }
  return annotation.ScalarValue();
}

void AddUnique(std::vector<std::string>* list, const std::string& value) {
  if (std::find(list->begin(), list->end(), value) == list->end()) {
    list->push_back(value);
  }
}

/// Group identity, mirroring HashAggregate's key (value text + type per
/// slot) so distributed grouping coincides with shard-local grouping.
std::string GroupKey(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    key += v.ToString();
    key += '\x1f';
    key += ValueTypeName(v.type());
    key += '\x1e';
  }
  return key;
}

bool DegradableCode(StatusCode code) {
  return code == StatusCode::kTimeout || code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted;
}

int64_t ElapsedMicros(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Per-(fn, variable) partial-aggregate accumulator — the distributed half
/// of HashAggregate's Accum. Shard engines run the decomposed aggregates;
/// the coordinator recombines them with the same skip-null / numeric-sum /
/// Compare-extremes rules the operator applies per row.
struct PartialAcc {
  int64_t count = 0;
  double sum = 0.0;
  bool any = false;  ///< some shard saw a non-null input.
  Value extreme;     ///< running min or max (per the partial's fn).
};

struct GroupState {
  std::vector<Value> keys;  ///< group variable values, in GROUP BY order.
  std::vector<PartialAcc> accs;
};

}  // namespace

struct Coordinator::BranchPlan {
  const xmlql::Query* query = nullptr;
  const metadata::FragmentMap* map = nullptr;
  std::string source_name;
  std::string source_label;  ///< "source:collection".
  bool aggregate = false;
  std::string shard_text;
  std::vector<size_t> target_shards;
  size_t pruned = 0;
  double est_rows = -1.0;
  /// Aggregation decomposition: the template's distinct (fn, var) calls and
  /// the deduplicated partials shipped to shards (avg → sum + count).
  std::vector<std::pair<AggregateFn, std::string>> aggregates;
  std::vector<std::pair<AggregateFn, std::string>> partials;
  /// Gather-side ordering (ORDER BY spec of the original query).
  std::vector<std::string> order_vars;
  std::vector<bool> descending;
  int64_t limit = -1;
};

Coordinator::Coordinator(ShardCluster* cluster, DistOptions options,
                         core::EngineOptions local_engine_options)
    : cluster_(cluster),
      options_(options),
      local_(cluster->catalog(), local_engine_options) {}

CoordinatorCounters Coordinator::counters() const {
  CoordinatorCounters out;
  out.scatter_queries = scatter_queries_.load(std::memory_order_relaxed);
  out.fallback_queries = fallback_queries_.load(std::memory_order_relaxed);
  out.subqueries = subqueries_.load(std::memory_order_relaxed);
  out.shards_pruned = shards_pruned_.load(std::memory_order_relaxed);
  out.merge_rows = merge_rows_.load(std::memory_order_relaxed);
  out.stragglers = stragglers_.load(std::memory_order_relaxed);
  out.partial_results = partial_results_.load(std::memory_order_relaxed);
  return out;
}

bool Coordinator::PlanBranch(const xmlql::Query& query, BranchPlan* plan,
                             std::string* reason) const {
  plan->query = &query;
  if (query.patterns.size() != 1) {
    *reason = "multi-pattern join";
    return false;
  }
  const xmlql::SourceRef& ref = query.patterns[0].source;
  if (ref.is_view()) {
    *reason = "mediated-view source";
    return false;
  }
  const metadata::FragmentMap* map =
      cluster_->catalog()->fragment_map(ref.source, ref.collection);
  if (map == nullptr) {
    *reason = "collection is not sharded";
    return false;
  }
  plan->map = map;
  plan->source_name = ref.source;
  plan->source_label = ref.ToString();

  std::shared_ptr<const metadata::CollectionStats> stats =
      cluster_->catalog()->statistics().Get(ref.source, ref.collection);
  plan->est_rows = stats != nullptr ? stats->row_count : -1.0;
  if (options_.min_scatter_rows > 0 && plan->est_rows >= 0 &&
      plan->est_rows < options_.min_scatter_rows) {
    *reason = "below min_scatter_rows";
    return false;
  }

  if (query.construct == nullptr ||
      query.construct->kind != TemplateNode::Kind::kElement) {
    *reason = "non-element construct root";
    return false;
  }
  if (UsesReservedNames(*query.construct)) {
    *reason = "template uses reserved __n names";
    return false;
  }

  plan->limit = query.limit;
  for (const xmlql::OrderSpec& spec : query.order_by) {
    plan->order_vars.push_back(spec.variable);
    plan->descending.push_back(spec.descending);
  }

  plan->aggregate = query.IsAggregation();
  xmlql::Query shard_query = CloneQuery(query);
  // LIMIT is gather-side only: a shard-local LIMIT would pick an arbitrary
  // per-shard subset and the merged answer would depend on the shard count.
  shard_query.limit = -1;

  if (!plan->aggregate) {
    // Shape A (row gather): annotate each result row with its sort keys so
    // the gather side can merge order-preserving without re-deriving them.
    for (size_t i = 0; i < query.order_by.size(); ++i) {
      auto annotation = std::make_unique<TemplateNode>();
      annotation->kind = TemplateNode::Kind::kElement;
      annotation->tag = "__nsk" + std::to_string(i);
      auto variable = std::make_unique<TemplateNode>();
      variable->kind = TemplateNode::Kind::kVariable;
      variable->variable = query.order_by[i].variable;
      annotation->children.push_back(std::move(variable));
      shard_query.construct->children.push_back(std::move(annotation));
    }
  } else {
    // Shape B (partial aggregation): ship GROUP BY plus decomposed
    // aggregates; the original template is instantiated at the gather side
    // from the recombined values.
    if (PatternHasElementVariable(query.patterns[0].root)) {
      *reason = "ELEMENT_AS binding in aggregation";
      return false;
    }
    std::set<std::string> seen_groups;
    for (const std::string& var : query.group_by) {
      if (!seen_groups.insert(var).second) {
        *reason = "duplicate GROUP BY variable";
        return false;
      }
    }
    for (const std::string& var : plan->order_vars) {
      if (seen_groups.count(var) == 0) {
        *reason = "ORDER BY variable is not a grouping key";
        return false;
      }
    }
    query.construct->CollectAggregates(&plan->aggregates);
    std::set<std::string> seen_outputs;
    for (const std::string& var : query.group_by) seen_outputs.insert(var);
    for (const auto& [fn, var] : plan->aggregates) {
      if (!seen_outputs
               .insert(std::string(xmlql::AggregateFnName(fn)) + "_" + var)
               .second) {
        *reason = "aggregate output name collides with a grouping key";
        return false;
      }
    }
    std::set<std::string> seen_partials;
    auto add_partial = [&](AggregateFn fn, const std::string& var) {
      if (seen_partials
              .insert(std::string(xmlql::AggregateFnName(fn)) + "\x1f" + var)
              .second) {
        plan->partials.emplace_back(fn, var);
      }
    };
    for (const auto& [fn, var] : plan->aggregates) {
      switch (fn) {
        case AggregateFn::kCount:
          add_partial(AggregateFn::kCount, var);
          break;
        case AggregateFn::kSum:
          add_partial(AggregateFn::kSum, var);
          break;
        case AggregateFn::kAvg:
          add_partial(AggregateFn::kSum, var);
          add_partial(AggregateFn::kCount, var);
          break;
        case AggregateFn::kMin:
          add_partial(AggregateFn::kMin, var);
          break;
        case AggregateFn::kMax:
          add_partial(AggregateFn::kMax, var);
          break;
      }
    }

    auto root = std::make_unique<TemplateNode>();
    root->kind = TemplateNode::Kind::kElement;
    root->tag = "__npart";
    for (size_t i = 0; i < query.group_by.size(); ++i) {
      auto annotation = std::make_unique<TemplateNode>();
      annotation->kind = TemplateNode::Kind::kElement;
      annotation->tag = "__ngk" + std::to_string(i);
      auto variable = std::make_unique<TemplateNode>();
      variable->kind = TemplateNode::Kind::kVariable;
      variable->variable = query.group_by[i];
      annotation->children.push_back(std::move(variable));
      root->children.push_back(std::move(annotation));
    }
    for (size_t j = 0; j < plan->partials.size(); ++j) {
      auto annotation = std::make_unique<TemplateNode>();
      annotation->kind = TemplateNode::Kind::kElement;
      annotation->tag = "__nag" + std::to_string(j);
      auto agg = std::make_unique<TemplateNode>();
      agg->kind = TemplateNode::Kind::kAggregate;
      agg->aggregate = plan->partials[j].first;
      agg->variable = plan->partials[j].second;
      annotation->children.push_back(std::move(agg));
      root->children.push_back(std::move(annotation));
    }
    shard_query.construct = std::move(root);
    shard_query.order_by.clear();
  }

  Result<std::string> printed = xmlql::PrintQuery(shard_query);
  if (!printed.ok()) {
    *reason = "rewrite not printable: " + printed.status().message();
    return false;
  }
  plan->shard_text = std::move(*printed);

  // --- Shard pruning from the partition key -------------------------------
  std::vector<size_t> targets = plan->map->AllFragments();
  auto intersect = [&targets](const std::vector<size_t>& keep) {
    std::set<size_t> allowed(keep.begin(), keep.end());
    std::vector<size_t> next;
    for (size_t shard : targets) {
      if (allowed.count(shard) > 0) next.push_back(shard);
    }
    targets = std::move(next);
  };

  std::vector<const ElementPattern*> records =
      RecordPatterns(query.patterns[0].root);
  // Variable → statistics-column map over the shape-resolved records. This
  // (like PartitionKeyOf) assumes the partition-key field appears at most
  // once per record — the flat record shape Analyze() collects.
  std::map<std::string, std::string> var_columns;
  for (const ElementPattern* record : records) {
    for (const xmlql::AttrPattern& attr : record->attributes) {
      if (attr.is_variable && !attr.variable.empty()) {
        var_columns.emplace(attr.variable, "@" + attr.name);
      }
    }
    for (const std::unique_ptr<ElementPattern>& column : record->children) {
      if (column != nullptr && !column->content_variable.empty() &&
          column->tag != "*") {
        var_columns.emplace(column->content_variable, column->tag);
      }
    }
  }
  // Literal constraints inside the pattern prune like equality conditions.
  for (const ElementPattern* record : records) {
    for (const xmlql::AttrPattern& attr : record->attributes) {
      if (!attr.is_variable && "@" + attr.name == plan->map->partition_key) {
        intersect(plan->map->FragmentsForCondition(Condition::Op::kEq,
                                                   attr.literal));
      }
    }
    for (const std::unique_ptr<ElementPattern>& column : record->children) {
      if (column != nullptr && column->content_literal.has_value() &&
          column->tag == plan->map->partition_key) {
        intersect(plan->map->FragmentsForCondition(Condition::Op::kEq,
                                                   *column->content_literal));
      }
    }
  }
  for (const Condition& condition : query.conditions) {
    const Condition::Operand* var_side = nullptr;
    const Value* literal = nullptr;
    Condition::Op op = condition.op;
    if (condition.lhs.is_variable && !condition.rhs.is_variable) {
      var_side = &condition.lhs;
      literal = &condition.rhs.literal;
    } else if (condition.rhs.is_variable && !condition.lhs.is_variable) {
      var_side = &condition.rhs;
      literal = &condition.lhs.literal;
      op = FlipOp(op);
    } else {
      continue;
    }
    auto it = var_columns.find(var_side->variable);
    if (it == var_columns.end() || it->second != plan->map->partition_key) {
      continue;
    }
    intersect(plan->map->FragmentsForCondition(op, *literal));
  }

  plan->target_shards = std::move(targets);
  plan->pruned = plan->map->num_fragments - plan->target_shards.size();
  return true;
}

Result<core::QueryResult> Coordinator::ExecuteText(
    std::string_view xmlql_text, const core::QueryOptions& query_options) {
  Result<xmlql::Program> program = xmlql::ParseProgram(xmlql_text);
  if (!program.ok()) return program.status();

  std::vector<BranchPlan> plans(program->branches.size());
  for (size_t b = 0; b < program->branches.size(); ++b) {
    std::string reason;
    if (!PlanBranch(program->branches[b], &plans[b], &reason)) {
      fallback_queries_.fetch_add(1, std::memory_order_relaxed);
      return local_.ExecuteText(xmlql_text, query_options);
    }
  }
  scatter_queries_.fetch_add(1, std::memory_order_relaxed);
  return ExecuteScattered(std::move(plans), query_options);
}

Result<core::QueryResult> Coordinator::ExecuteScattered(
    std::vector<BranchPlan> plans, const core::QueryOptions& query_options) {
  const core::AvailabilityPolicy policy = query_options.availability.value_or(
      local_.options().availability);
  core::QueryOptions shard_options = query_options;
  shard_options.availability = policy;

  struct ShardRun {
    size_t shard = 0;
    core::QueryHandlePtr handle;
    const Result<core::QueryResult>* outcome = nullptr;  ///< null: straggler.
    bool degraded = false;
  };
  std::vector<std::vector<ShardRun>> runs(plans.size());
  size_t dispatched = 0;
  for (size_t b = 0; b < plans.size(); ++b) {
    for (size_t shard : plans[b].target_shards) {
      ShardRun run;
      run.shard = shard;
      run.handle =
          cluster_->shard_engine(shard)->Submit(plans[b].shard_text,
                                                shard_options);
      runs[b].push_back(std::move(run));
      ++dispatched;
    }
    shards_pruned_.fetch_add(plans[b].pruned, std::memory_order_relaxed);
  }
  subqueries_.fetch_add(dispatched, std::memory_order_relaxed);

  auto cancel_all = [&runs]() {
    for (std::vector<ShardRun>& branch_runs : runs) {
      for (ShardRun& run : branch_runs) run.handle->Cancel();
    }
  };
  const std::atomic<bool>* cancel = query_options.cancel;

  // --- Gather: wait (bounded when a straggler budget is set) --------------
  const int64_t budget = options_.straggler_wait_micros;
  const auto gather_start = std::chrono::steady_clock::now();
  core::QueryResult out;
  out.document = Node::Element("results");
  core::ExecutionReport& report = out.report;
  size_t total_merge_rows = 0;

  for (size_t b = 0; b < plans.size(); ++b) {
    const BranchPlan& plan = plans[b];
    for (ShardRun& run : runs[b]) {
      // Wait in bounded slices, polling the caller's cancel flag between
      // slices, so a cancelled scatter-gather abandons the remaining shards
      // within ~kGatherSliceMicros instead of blocking until they finish.
      while (run.outcome == nullptr) {
        Status cancelled = CheckCancelled(cancel);
        if (!cancelled.ok()) {
          cancel_all();
          return cancelled;
        }
        if (budget > 0) {
          const int64_t remaining = budget - ElapsedMicros(gather_start);
          if (remaining <= 0) break;  // Straggler: outcome stays null.
          run.outcome =
              run.handle->WaitFor(std::min(kGatherSliceMicros, remaining));
        } else if (cancel == nullptr) {
          // No flag to poll: a plain blocking wait always produces an
          // outcome, so this loop runs exactly once.
          run.outcome = &run.handle->Wait();
        } else {
          run.outcome = run.handle->WaitFor(kGatherSliceMicros);
        }
      }
      const bool straggler = run.outcome == nullptr;
      const bool failed = !straggler && !run.outcome->ok();
      if (!straggler && !failed) continue;

      if (straggler) {
        run.handle->Cancel();
        stragglers_.fetch_add(1, std::memory_order_relaxed);
      } else if (run.outcome->status().code() == StatusCode::kTimeout) {
        stragglers_.fetch_add(1, std::memory_order_relaxed);
      }
      const Status status =
          straggler ? Status::Timeout(
                          "shard " + std::to_string(run.shard) + " of " +
                          plan.source_label + " exceeded the straggler budget")
                    : run.outcome->status();
      if (policy == core::AvailabilityPolicy::kFailFast ||
          !DegradableCode(status.code())) {
        cancel_all();
        return status;
      }
      // Required sources fail the query under any policy (paper §3.4).
      for (const std::string& required : query_options.required_sources) {
        if (required == plan.source_name) {
          cancel_all();
          return Status::Unavailable("required source '" + required +
                                     "' is unavailable");
        }
      }
      run.degraded = true;
      report.completeness.complete = false;
      AddUnique(&report.completeness.unavailable_sources,
                plan.source_label + "#shard" + std::to_string(run.shard));
    }
  }

  // --- Merge each branch's shard answers ----------------------------------
  std::string plan_text, plan_stats_text;
  for (size_t b = 0; b < plans.size(); ++b) {
    const BranchPlan& plan = plans[b];
    const xmlql::Query& query = *plan.query;

    std::string shard_list;
    for (size_t i = 0; i < plan.target_shards.size(); ++i) {
      if (i > 0) shard_list += ",";
      shard_list += std::to_string(plan.target_shards[i]);
    }
    const std::string scatter_header =
        (plans.size() > 1 ? "-- branch " + std::to_string(b) + " --\n" : "") +
        "scatter: " + plan.source_label + " shards=[" + shard_list + "] of " +
        std::to_string(plan.map->num_fragments) +
        " pruned=" + std::to_string(plan.pruned) + " key=" +
        plan.map->partition_key + " (" +
        metadata::FragmentMap::KindName(plan.map->kind) + ") est_cost=" +
        std::to_string(cost_model_.ScatterGatherCost(
            std::max(plan.est_rows, 0.0), plan.target_shards.size(),
            std::max(plan.est_rows, 0.0))) +
        "\n";
    plan_text += scatter_header;
    plan_stats_text += scatter_header;

    // Collect successful shard answers (and their reports).
    std::vector<core::QueryResult> shard_results;
    size_t degraded = 0;
    for (ShardRun& run : runs[b]) {
      const std::string header = "-- shard " + std::to_string(run.shard) +
                                 (run.degraded ? " (degraded) --\n" : " --\n");
      plan_text += header;
      plan_stats_text += header;
      if (run.degraded) {
        ++degraded;
        continue;
      }
      core::QueryResult shard_result = **run.outcome;
      const core::ExecutionReport& sr = shard_result.report;
      plan_text += sr.plan;
      if (!plan_text.empty() && plan_text.back() != '\n') plan_text += "\n";
      plan_stats_text += sr.plan_with_stats;
      if (!plan_stats_text.empty() && plan_stats_text.back() != '\n') {
        plan_stats_text += "\n";
      }
      report.rows_shipped += sr.rows_shipped;
      report.fragments_pushed_down += sr.fragments_pushed_down;
      report.fragments_fetched += sr.fragments_fetched;
      report.fragments_bind_joined += sr.fragments_bind_joined;
      report.retries += sr.retries;
      report.source_latency_micros =
          std::max(report.source_latency_micros, sr.source_latency_micros);
      report.queue_wait_micros =
          std::max(report.queue_wait_micros, sr.queue_wait_micros);
      for (const std::string& src : sr.sources_contacted) {
        AddUnique(&report.sources_contacted, src);
      }
      // Shard-internal degradation (an unsharded forwarded source was down
      // under kPartial) taints the distributed answer too.
      if (!sr.completeness.complete) {
        report.completeness.complete = false;
        for (const std::string& src : sr.completeness.unavailable_sources) {
          AddUnique(&report.completeness.unavailable_sources, src);
        }
      }
      shard_results.push_back(std::move(shard_result));
    }
    if (!runs[b].empty() && degraded == runs[b].size()) {
      report.completeness.skipped_branches.push_back(b);
    }

    size_t branch_merge_rows = 0;
    if (!plan.aggregate) {
      // Shape A: strip the __nsk sort-key annotations, sort every shard
      // stream canonically, k-way merge, apply LIMIT.
      const size_t num_keys = plan.order_vars.size();
      MergeComparator cmp(plan.descending);
      std::vector<std::vector<MergeItem>> streams;
      streams.reserve(shard_results.size());
      for (core::QueryResult& shard_result : shard_results) {
        NodePtr doc = shard_result.MutableDocument();
        std::vector<MergeItem> stream;
        for (NodePtr& instance : doc->TakeChildren()) {
          MergeItem item;
          const size_t n = instance->children().size();
          if (n < num_keys) {
            return Status::Internal("shard row lost its sort annotations");
          }
          item.keys.resize(num_keys);
          for (size_t k = 0; k < num_keys; ++k) {
            const Node& annotation = *instance->children()[n - num_keys + k];
            if (annotation.name() != "__nsk" + std::to_string(k)) {
              return Status::Internal("mis-shaped sort annotation " +
                                      annotation.name());
            }
            item.keys[k] = AnnotationValue(annotation);
          }
          for (size_t k = 0; k < num_keys; ++k) {
            instance->RemoveChild(instance->children().size() - 1);
          }
          item.bytes = ToXml(*instance);
          item.node = std::move(instance);
          stream.push_back(std::move(item));
        }
        std::sort(stream.begin(), stream.end(),
                  [&cmp](const MergeItem& a, const MergeItem& b) {
                    return cmp.Less(a, b);
                  });
        streams.push_back(std::move(stream));
      }
      std::vector<MergeItem> merged =
          KWayMerge(std::move(streams), cmp, &branch_merge_rows);
      if (plan.limit >= 0 &&
          merged.size() > static_cast<size_t>(plan.limit)) {
        merged.resize(static_cast<size_t>(plan.limit));
      }
      for (MergeItem& item : merged) {
        out.document->AddChild(std::move(item.node));
      }
    } else {
      // Shape B: recombine partial aggregates per group, finalize with
      // HashAggregate's rules, instantiate the original template.
      const size_t num_groups = query.group_by.size();
      const size_t num_partials = plan.partials.size();
      std::map<std::string, size_t> index;
      std::vector<GroupState> groups;
      for (core::QueryResult& shard_result : shard_results) {
        NodePtr doc = shard_result.MutableDocument();
        for (const NodePtr& part : doc->TakeChildren()) {
          if (!part->is_element() || part->name() != "__npart" ||
              part->children().size() != num_groups + num_partials) {
            return Status::Internal("mis-shaped partial-aggregate row");
          }
          std::vector<Value> keys(num_groups);
          for (size_t i = 0; i < num_groups; ++i) {
            keys[i] = AnnotationValue(*part->children()[i]);
          }
          auto [it, inserted] = index.try_emplace(GroupKey(keys), groups.size());
          if (inserted) {
            GroupState state;
            state.keys = std::move(keys);
            state.accs.resize(num_partials);
            groups.push_back(std::move(state));
          }
          GroupState& state = groups[it->second];
          for (size_t j = 0; j < num_partials; ++j) {
            const Value v = AnnotationValue(*part->children()[num_groups + j]);
            PartialAcc& acc = state.accs[j];
            switch (plan.partials[j].first) {
              case AggregateFn::kCount:
                acc.count += v.is_numeric()
                                 ? static_cast<int64_t>(v.NumericValue())
                                 : 0;
                break;
              case AggregateFn::kSum:
                if (!v.is_null()) {
                  acc.sum += v.NumericValue();
                  acc.any = true;
                }
                break;
              case AggregateFn::kMin:
                if (!v.is_null()) {
                  if (!acc.any || v.Compare(acc.extreme) < 0) acc.extreme = v;
                  acc.any = true;
                }
                break;
              case AggregateFn::kMax:
                if (!v.is_null()) {
                  if (!acc.any || v.Compare(acc.extreme) > 0) acc.extreme = v;
                  acc.any = true;
                }
                break;
              case AggregateFn::kAvg:
                return Status::Internal("avg survived decomposition");
            }
          }
        }
      }

      std::map<std::string, size_t> partial_of;
      for (size_t j = 0; j < num_partials; ++j) {
        partial_of[std::string(xmlql::AggregateFnName(plan.partials[j].first)) +
                   "\x1f" + plan.partials[j].second] = j;
      }
      algebra::TupleSchema schema;
      for (const std::string& var : query.group_by) schema.AddVariable(var);
      for (const auto& [fn, var] : plan.aggregates) {
        schema.AddVariable(std::string(xmlql::AggregateFnName(fn)) + "_" + var);
      }

      MergeComparator cmp(plan.descending);
      std::vector<MergeItem> items;
      items.reserve(groups.size());
      for (const GroupState& state : groups) {
        algebra::Tuple tuple(schema.size());
        for (size_t i = 0; i < num_groups; ++i) {
          tuple[i] = algebra::Binding{state.keys[i]};
        }
        size_t slot = num_groups;
        for (const auto& [fn, var] : plan.aggregates) {
          auto acc_of = [&](AggregateFn pfn) -> const PartialAcc& {
            return state.accs[partial_of.at(
                std::string(xmlql::AggregateFnName(pfn)) + "\x1f" + var)];
          };
          Value final_value;
          switch (fn) {
            case AggregateFn::kCount:
              final_value = Value::Int(acc_of(AggregateFn::kCount).count);
              break;
            case AggregateFn::kSum: {
              const PartialAcc& acc = acc_of(AggregateFn::kSum);
              final_value =
                  acc.any ? Value::Double(acc.sum) : Value::Null();
              break;
            }
            case AggregateFn::kAvg: {
              const PartialAcc& sum_acc = acc_of(AggregateFn::kSum);
              const int64_t count = acc_of(AggregateFn::kCount).count;
              final_value =
                  count > 0
                      ? Value::Double(sum_acc.sum / static_cast<double>(count))
                      : Value::Null();
              break;
            }
            case AggregateFn::kMin:
            case AggregateFn::kMax: {
              const PartialAcc& acc = acc_of(fn);
              final_value = acc.any ? acc.extreme : Value::Null();
              break;
            }
          }
          tuple[slot++] = algebra::Binding{final_value};
        }
        NIMBLE_ASSIGN_OR_RETURN(
            NodePtr instance,
            algebra::InstantiateTemplate(*query.construct, schema, tuple));
        MergeItem item;
        item.keys.reserve(plan.order_vars.size());
        for (const std::string& var : plan.order_vars) {
          size_t group_slot = 0;
          for (size_t i = 0; i < query.group_by.size(); ++i) {
            if (query.group_by[i] == var) group_slot = i;
          }
          item.keys.push_back(state.keys[group_slot]);
        }
        item.bytes = ToXml(*instance);
        item.node = std::move(instance);
        items.push_back(std::move(item));
      }
      std::sort(items.begin(), items.end(),
                [&cmp](const MergeItem& a, const MergeItem& b) {
                  return cmp.Less(a, b);
                });
      branch_merge_rows = items.size();
      if (plan.limit >= 0 && items.size() > static_cast<size_t>(plan.limit)) {
        items.resize(static_cast<size_t>(plan.limit));
      }
      for (MergeItem& item : items) {
        out.document->AddChild(std::move(item.node));
      }
    }

    total_merge_rows += branch_merge_rows;
    const std::string gather_line =
        "gather: merge rows=" + std::to_string(branch_merge_rows) +
        " order_by=" + std::to_string(plan.order_vars.size()) + " limit=" +
        std::to_string(plan.limit) +
        (plan.aggregate
             ? " partial_aggregates=" + std::to_string(plan.partials.size())
             : "") +
        "\n";
    plan_text += gather_line;
    plan_stats_text += gather_line;
  }

  merge_rows_.fetch_add(total_merge_rows, std::memory_order_relaxed);
  report.plan = std::move(plan_text);
  report.plan_with_stats = std::move(plan_stats_text);
  report.result_count = out.document->children().size();
  out.document->SetAttribute("complete",
                             Value::Bool(report.completeness.complete));
  if (!report.completeness.complete) {
    partial_results_.fetch_add(1, std::memory_order_relaxed);
    std::string missing;
    for (size_t i = 0; i < report.completeness.unavailable_sources.size();
         ++i) {
      if (i > 0) missing += ",";
      missing += report.completeness.unavailable_sources[i];
    }
    out.document->SetAttribute("missing_sources", Value::String(missing));
  }
  return out;
}

}  // namespace dist
}  // namespace nimble
