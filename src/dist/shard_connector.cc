#include "dist/shard_connector.h"

namespace nimble {
namespace dist {

void FragmentRegistry::Install(const std::string& source,
                               const std::string& collection,
                               std::vector<ConstNodePtr> fragments) {
  {
    MutexLock lock(mu_);
    fragments_[Key(source, collection)] = std::move(fragments);
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

ConstNodePtr FragmentRegistry::Get(const std::string& source,
                                   const std::string& collection,
                                   size_t shard) const {
  MutexLock lock(mu_);
  auto it = fragments_.find(Key(source, collection));
  if (it == fragments_.end() || shard >= it->second.size()) return nullptr;
  return it->second[shard];
}

bool FragmentRegistry::IsSharded(const std::string& source,
                                 const std::string& collection) const {
  MutexLock lock(mu_);
  return fragments_.count(Key(source, collection)) > 0;
}

std::vector<size_t> FragmentRegistry::FragmentRowCounts(
    const std::string& source, const std::string& collection) const {
  std::vector<ConstNodePtr> snapshot;
  {
    MutexLock lock(mu_);
    auto it = fragments_.find(Key(source, collection));
    if (it == fragments_.end()) return {};
    snapshot = it->second;
  }
  std::vector<size_t> counts;
  counts.reserve(snapshot.size());
  for (const ConstNodePtr& fragment : snapshot) {
    counts.push_back(fragment == nullptr ? 0 : fragment->children().size());
  }
  return counts;
}

Result<NodePtr> ShardSourceConnector::FetchCollection(
    const std::string& collection, const connector::RequestContext& ctx) {
  NIMBLE_RETURN_IF_ERROR(Admit(ctx));
  ConstNodePtr fragment = registry_->Get(name(), collection, shard_index_);
  if (fragment == nullptr) {
    // Unsharded collection: serve the whole thing from the real source
    // (its own stats/admission apply).
    return inner_->FetchCollection(collection, ctx);
  }
  connector::FetchStats delta;
  delta.calls = 1;
  delta.rows_shipped = fragment->children().size();
  AddStats(ctx, delta);
  // Fetch contract: the caller owns the returned tree, so hand out a thawed
  // clone of the frozen fragment.
  return fragment->Clone();
}

}  // namespace dist
}  // namespace nimble
