#ifndef NIMBLE_DIST_COORDINATOR_H_
#define NIMBLE_DIST_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "dist/cluster.h"
#include "opt/cost_model.h"

namespace nimble {
namespace dist {

/// Scatter-gather configuration.
struct DistOptions {
  /// Wall-clock budget the gather side grants ALL shards of a query (0 =
  /// wait forever). A shard that has not answered when the budget runs out
  /// is cancelled and — under AvailabilityPolicy::kPartial — degraded to
  /// the partial-results path instead of stalling the whole query.
  int64_t straggler_wait_micros = 0;
  /// Collections whose merged row count (global catalog statistics) falls
  /// below this run undistributed on the local engine — scatter overhead
  /// is not worth paying for tiny collections. The decision reads only the
  /// shard-count-independent merged statistics, so a 1-shard and a 4-shard
  /// deployment make the same choice (the differential-test invariant).
  double min_scatter_rows = 0.0;
};

/// Monitor-facing counter snapshot.
struct CoordinatorCounters {
  uint64_t scatter_queries = 0;   ///< queries executed scatter-gather.
  uint64_t fallback_queries = 0;  ///< queries run whole on the local engine.
  uint64_t subqueries = 0;        ///< per-shard subplans dispatched.
  uint64_t shards_pruned = 0;     ///< shard subplans skipped by pruning.
  uint64_t merge_rows = 0;        ///< rows through the gather-side merge.
  uint64_t stragglers = 0;        ///< shard subplans past their deadline.
  uint64_t partial_results = 0;   ///< queries answered incomplete.
};

/// The scatter-gather coordinator (DESIGN.md §2i): parses a query, decides
/// per UNION branch whether it can be scattered over the cluster's shard
/// engines, rewrites it into a per-shard subplan (sort-key annotations for
/// order-preserving gather, partial-aggregate decomposition for
/// sum/count/avg/min/max, LIMIT lifted to the gather side), prunes shards
/// that cannot hold matching rows, and merges the shard answers into a
/// result byte-identical to what one engine over the unsharded data in
/// canonical order would produce.
///
/// Anything it cannot prove distributable — multi-pattern joins, view
/// sources, unsharded collections, unprintable rewrites — falls back to an
/// owned local engine over the global (unsharded) catalog, so every query
/// keeps working; distribution is purely an optimization.
///
/// ExecuteText is safe to call from many threads at once.
class Coordinator {
 public:
  /// `cluster` must be Init()ed and must outlive the coordinator. The
  /// local fallback engine is built over the cluster's global catalog with
  /// `local_engine_options` (its availability policy is also the default
  /// policy for straggler degradation).
  explicit Coordinator(ShardCluster* cluster, DistOptions options = {},
                       core::EngineOptions local_engine_options = {});

  Result<core::QueryResult> ExecuteText(
      std::string_view xmlql_text, const core::QueryOptions& query_options = {});

  CoordinatorCounters counters() const;
  ShardCluster* cluster() { return cluster_; }
  core::IntegrationEngine* local_engine() { return &local_; }
  const DistOptions& options() const { return options_; }

 private:
  struct BranchPlan;

  /// Decides scatterability of one branch and, when scatterable, fills the
  /// plan (rewritten shard text, target shards, merge spec). Returns false
  /// with a reason when the branch must fall back.
  bool PlanBranch(const xmlql::Query& query, BranchPlan* plan,
                  std::string* reason) const;

  Result<core::QueryResult> ExecuteScattered(
      std::vector<BranchPlan> plans, const core::QueryOptions& query_options);

  ShardCluster* cluster_;
  DistOptions options_;
  opt::CostModel cost_model_;
  core::IntegrationEngine local_;

  std::atomic<uint64_t> scatter_queries_{0};
  std::atomic<uint64_t> fallback_queries_{0};
  std::atomic<uint64_t> subqueries_{0};
  std::atomic<uint64_t> shards_pruned_{0};
  std::atomic<uint64_t> merge_rows_{0};
  std::atomic<uint64_t> stragglers_{0};
  std::atomic<uint64_t> partial_results_{0};
};

}  // namespace dist
}  // namespace nimble

#endif  // NIMBLE_DIST_COORDINATOR_H_
