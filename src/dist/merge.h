#ifndef NIMBLE_DIST_MERGE_H_
#define NIMBLE_DIST_MERGE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "xml/node.h"
#include "xml/value.h"

namespace nimble {
namespace dist {

/// One result row travelling through the gather-side merge: the (stripped)
/// result element plus its sort keys and a canonical-serialization tiebreak.
struct MergeItem {
  /// ORDER BY key values, in spec order (empty when the query has none).
  std::vector<Value> keys;
  /// Canonical ToXml of `node` — the total-order tiebreak that makes the
  /// merged output byte-deterministic regardless of shard count. Ties on
  /// identical bytes are genuinely interchangeable rows.
  std::string bytes;
  NodePtr node;
};

/// Total order over MergeItems: ORDER BY keys first (Value::Compare, each
/// possibly descending), canonical bytes ascending as the tiebreak.
class MergeComparator {
 public:
  explicit MergeComparator(std::vector<bool> descending)
      : descending_(std::move(descending)) {}

  bool Less(const MergeItem& a, const MergeItem& b) const {
    const size_t n = std::min(a.keys.size(), b.keys.size());
    for (size_t i = 0; i < n; ++i) {
      int cmp = a.keys[i].Compare(b.keys[i]);
      if (cmp != 0) {
        const bool desc = i < descending_.size() && descending_[i];
        return desc ? cmp > 0 : cmp < 0;
      }
    }
    return a.bytes < b.bytes;
  }

 private:
  std::vector<bool> descending_;
};

/// Order-preserving k-way merge: each stream must already be sorted by
/// `cmp` (the coordinator sorts per-shard streams before merging); the
/// result is the sorted union. `merge_rows`, when non-null, is incremented
/// once per row that passed through the merge heap (the EXPLAIN / monitor
/// gauge).
std::vector<MergeItem> KWayMerge(std::vector<std::vector<MergeItem>> streams,
                                 const MergeComparator& cmp,
                                 size_t* merge_rows);

}  // namespace dist
}  // namespace nimble

#endif  // NIMBLE_DIST_MERGE_H_
