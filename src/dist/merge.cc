#include "dist/merge.h"

#include <algorithm>

namespace nimble {
namespace dist {

std::vector<MergeItem> KWayMerge(std::vector<std::vector<MergeItem>> streams,
                                 const MergeComparator& cmp,
                                 size_t* merge_rows) {
  size_t total = 0;
  for (const auto& stream : streams) total += stream.size();
  std::vector<MergeItem> out;
  out.reserve(total);

  /// Heap entries point at the head of each non-empty stream. The heap is a
  /// max-heap under std::push/pop_heap, so the comparator is inverted (and
  /// breaks equal heads by stream index, keeping the pop order fully
  /// deterministic even for byte-identical rows).
  struct Head {
    size_t stream;
    size_t pos;
  };
  auto greater = [&](const Head& a, const Head& b) {
    const MergeItem& x = streams[a.stream][a.pos];
    const MergeItem& y = streams[b.stream][b.pos];
    if (cmp.Less(x, y)) return false;
    if (cmp.Less(y, x)) return true;
    return a.stream > b.stream;
  };

  std::vector<Head> heap;
  heap.reserve(streams.size());
  for (size_t s = 0; s < streams.size(); ++s) {
    if (!streams[s].empty()) heap.push_back(Head{s, 0});
  }
  std::make_heap(heap.begin(), heap.end(), greater);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    Head head = heap.back();
    heap.pop_back();
    out.push_back(std::move(streams[head.stream][head.pos]));
    if (merge_rows != nullptr) ++*merge_rows;
    if (++head.pos < streams[head.stream].size()) {
      heap.push_back(head);
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
  return out;
}

}  // namespace dist
}  // namespace nimble
