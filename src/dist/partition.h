#ifndef NIMBLE_DIST_PARTITION_H_
#define NIMBLE_DIST_PARTITION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "metadata/fragment_map.h"
#include "metadata/statistics.h"
#include "xml/node.h"

namespace nimble {
namespace dist {

/// How to split one collection (the LinearTablePartitioner knob set: key,
/// keying scheme, fragment count).
struct PartitionSpec {
  std::string source;
  std::string collection;
  /// Record field the split keys on: child element tag, or "@name" for a
  /// record attribute.
  std::string partition_key;
  metadata::FragmentMap::Kind kind = metadata::FragmentMap::Kind::kHash;
  size_t num_fragments = 1;
};

/// One partitioned collection: the catalog-side map plus the per-fragment
/// record trees and statistics. `merged_stats` is the KMV-merged whole-
/// collection view the coordinator's optimizer sees; `fragment_stats[i]`
/// is what shard i's local optimizer sees.
struct PartitionedCollection {
  metadata::FragmentMap map;
  /// fragments[i]: an element named like the input root whose children are
  /// fragment i's records, in the input's document order.
  std::vector<NodePtr> fragments;
  std::vector<metadata::CollectionStats> fragment_stats;
  metadata::CollectionStats merged_stats;
};

/// The partition-key value of one record under the naming convention above.
/// Null when the record lacks the field — such records land in fragment 0
/// (hash of Null / below every range bound), and a pruned equality probe
/// can never match them, so pruning stays sound.
Value PartitionKeyOf(const Node& record, const std::string& partition_key);

/// Splits `root`'s records into `spec.num_fragments` fragments. For kRange
/// the split points are equi-depth quantiles of the observed key values;
/// fails when the collection has too few distinct keys to cut
/// num_fragments-1 strictly ascending bounds. Per-fragment statistics are
/// a full (unsampled) analyze of each fragment tree.
Result<PartitionedCollection> PartitionCollection(const Node& root,
                                                  const PartitionSpec& spec);

}  // namespace dist
}  // namespace nimble

#endif  // NIMBLE_DIST_PARTITION_H_
