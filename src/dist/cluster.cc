#include "dist/cluster.h"

#include <set>

namespace nimble {
namespace dist {

ShardCluster::ShardCluster(metadata::Catalog* catalog,
                           ShardClusterOptions options)
    : catalog_(catalog), options_(std::move(options)) {
  if (options_.num_shards == 0) options_.num_shards = 1;
}

ShardCluster::~ShardCluster() {
  if (catalog_listener_token_ != 0) {
    catalog_->RemoveUpdateListener(catalog_listener_token_);
  }
}

Status ShardCluster::Partition(const PartitionSpec& spec) {
  connector::Connector* source = catalog_->source(spec.source);
  if (source == nullptr) {
    return Status::NotFound("no source named '" + spec.source + "'");
  }
  PartitionSpec sized = spec;
  sized.num_fragments = options_.num_shards;
  NIMBLE_ASSIGN_OR_RETURN(NodePtr tree,
                          source->FetchCollection(sized.collection));
  NIMBLE_ASSIGN_OR_RETURN(PartitionedCollection parts,
                          PartitionCollection(*tree, sized));
  NIMBLE_RETURN_IF_ERROR(catalog_->RegisterFragmentMap(parts.map));

  std::vector<ConstNodePtr> frozen;
  frozen.reserve(parts.fragments.size());
  for (NodePtr& fragment : parts.fragments) frozen.push_back(fragment->Freeze());
  registry_.Install(sized.source, sized.collection, std::move(frozen));

  catalog_->statistics().Put(parts.merged_stats);
  if (initialized_) {
    for (size_t i = 0;
         i < parts.fragment_stats.size() && i < shard_catalogs_.size(); ++i) {
      shard_catalogs_[i]->statistics().Put(parts.fragment_stats[i]);
    }
  }
  return Status::OK();
}

Status ShardCluster::Init() {
  if (initialized_) return Status::AlreadyExists("cluster already initialized");

  for (size_t shard = 0; shard < options_.num_shards; ++shard) {
    auto shard_catalog = std::make_unique<metadata::Catalog>();
    for (const std::string& source_name : catalog_->SourceNames()) {
      std::unique_ptr<connector::Connector> conn =
          std::make_unique<ShardSourceConnector>(
              &registry_, catalog_->source(source_name), shard);
      if (options_.wrap_connector) {
        conn = options_.wrap_connector(shard, std::move(conn));
      }
      NIMBLE_RETURN_IF_ERROR(shard_catalog->RegisterSource(std::move(conn)));
    }

    // Mediated views replicate in dependency order (DefineView validates
    // bottom-up); every pass defines at least one remaining view or the
    // global catalog held a cycle, which DefineView already rules out.
    std::set<std::string> defined;
    std::vector<std::string> remaining = catalog_->ViewNames();
    while (!remaining.empty()) {
      std::vector<std::string> next;
      for (const std::string& name : remaining) {
        const metadata::MediatedView* view = catalog_->view(name);
        bool ready = true;
        for (const std::string& dep : view->view_dependencies) {
          if (defined.count(dep) == 0) ready = false;
        }
        if (!ready) {
          next.push_back(name);
          continue;
        }
        NIMBLE_RETURN_IF_ERROR(shard_catalog->DefineView(
            name, view->query_text, view->description));
        defined.insert(name);
      }
      if (next.size() == remaining.size()) {
        return Status::Internal("view dependency cycle while replicating");
      }
      remaining = std::move(next);
    }

    core::EngineOptions opts = options_.engine_options;
    opts.query_deadline_micros = options_.shard_deadline_micros;
    opts.max_inflight_queries = options_.shard_max_inflight;
    opts.result_cache_bytes = 0;  // see ShardClusterOptions::engine_options
    if (options_.tweak_engine_options) {
      options_.tweak_engine_options(shard, &opts);
    }
    // Per-shard fragment statistics for the local optimizer.
    for (const metadata::FragmentMap* map : catalog_->FragmentMaps()) {
      ConstNodePtr fragment =
          registry_.Get(map->source, map->collection, shard);
      if (fragment != nullptr) {
        shard_catalog->statistics().Put(metadata::AnalyzeCollectionTree(
            map->source, map->collection, *fragment, /*sample_rows=*/0));
      }
    }

    balancer_.AddEngine(std::make_unique<core::IntegrationEngine>(
        shard_catalog.get(), opts));
    shard_catalogs_.push_back(std::move(shard_catalog));
  }

  catalog_listener_token_ =
      catalog_->AddUpdateListener([this](const std::string& source_name) {
        for (const metadata::FragmentMap* map : catalog_->FragmentMaps()) {
          if (map->source == source_name) {
            // Best-effort: a failed repartition keeps serving the previous
            // fragment set (the registry swap never happened).
            (void)Repartition(source_name);
            return;
          }
        }
      });
  initialized_ = true;
  return Status::OK();
}

Status ShardCluster::InstallPartition(const PartitionSpec& spec,
                                      const Node& tree) {
  const metadata::FragmentMap* map =
      catalog_->fragment_map(spec.source, spec.collection);
  if (map == nullptr) {
    return Status::NotFound("collection is not registered as fragmented");
  }
  std::vector<NodePtr> fragments;
  fragments.reserve(map->num_fragments);
  for (size_t i = 0; i < map->num_fragments; ++i) {
    fragments.push_back(Node::Element(tree.name()));
  }
  for (const NodePtr& record : tree.children()) {
    if (record == nullptr) continue;
    size_t fragment = 0;
    if (record->is_element()) {
      fragment = map->FragmentForKey(PartitionKeyOf(*record, map->partition_key));
    }
    fragments[fragment]->AddChild(record->Clone());
  }

  std::vector<metadata::CollectionStats> fragment_stats;
  fragment_stats.reserve(fragments.size());
  std::vector<ConstNodePtr> frozen;
  frozen.reserve(fragments.size());
  for (NodePtr& fragment : fragments) {
    fragment_stats.push_back(metadata::AnalyzeCollectionTree(
        spec.source, spec.collection, *fragment, /*sample_rows=*/0));
    frozen.push_back(fragment->Freeze());
  }
  registry_.Install(spec.source, spec.collection, std::move(frozen));
  catalog_->statistics().Put(metadata::MergeCollectionStats(fragment_stats));
  for (size_t i = 0;
       i < fragment_stats.size() && i < shard_catalogs_.size(); ++i) {
    shard_catalogs_[i]->statistics().Put(std::move(fragment_stats[i]));
  }
  return Status::OK();
}

Status ShardCluster::Repartition(const std::string& source_name) {
  connector::Connector* source = catalog_->source(source_name);
  if (source == nullptr) {
    return Status::NotFound("no source named '" + source_name + "'");
  }
  for (const metadata::FragmentMap* map : catalog_->FragmentMaps()) {
    if (map->source != source_name) continue;
    NIMBLE_ASSIGN_OR_RETURN(NodePtr tree,
                            source->FetchCollection(map->collection));
    PartitionSpec spec;
    spec.source = map->source;
    spec.collection = map->collection;
    spec.partition_key = map->partition_key;
    spec.kind = map->kind;
    spec.num_fragments = map->num_fragments;
    NIMBLE_RETURN_IF_ERROR(InstallPartition(spec, *tree));
  }
  repartitions_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace dist
}  // namespace nimble
