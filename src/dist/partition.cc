#include "dist/partition.h"

#include <algorithm>

namespace nimble {
namespace dist {

Value PartitionKeyOf(const Node& record, const std::string& partition_key) {
  if (!record.is_element()) return Value::Null();
  if (!partition_key.empty() && partition_key[0] == '@') {
    return record.GetAttribute(partition_key.substr(1));
  }
  NodePtr child = record.FindChild(partition_key);
  return child == nullptr ? Value::Null() : child->ScalarValue();
}

namespace {

/// Equi-depth split points: n-1 ascending bounds cutting the sorted key
/// multiset into n roughly equal runs. Fails when the collection's distinct
/// keys cannot support that many strictly ascending cuts.
Result<std::vector<Value>> RangeBounds(std::vector<Value> keys, size_t n) {
  std::sort(keys.begin(), keys.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  std::vector<Value> bounds;
  for (size_t i = 1; i < n; ++i) {
    const Value& candidate = keys[i * keys.size() / n];
    if (!bounds.empty() && bounds.back().Compare(candidate) >= 0) {
      return Status::InvalidArgument(
          "too few distinct partition-key values for " + std::to_string(n) +
          " range fragments");
    }
    bounds.push_back(candidate);
  }
  return bounds;
}

}  // namespace

Result<PartitionedCollection> PartitionCollection(const Node& root,
                                                  const PartitionSpec& spec) {
  if (spec.num_fragments == 0) {
    return Status::InvalidArgument("cannot partition into zero fragments");
  }
  PartitionedCollection out;
  out.map.source = spec.source;
  out.map.collection = spec.collection;
  out.map.partition_key = spec.partition_key;
  out.map.kind = spec.kind;
  out.map.num_fragments = spec.num_fragments;

  if (spec.kind == metadata::FragmentMap::Kind::kRange &&
      spec.num_fragments > 1) {
    std::vector<Value> keys;
    keys.reserve(root.children().size());
    for (const NodePtr& record : root.children()) {
      if (record != nullptr && record->is_element()) {
        keys.push_back(PartitionKeyOf(*record, spec.partition_key));
      }
    }
    if (keys.size() < spec.num_fragments) {
      return Status::InvalidArgument("collection has fewer records than "
                                     "requested range fragments");
    }
    NIMBLE_ASSIGN_OR_RETURN(out.map.range_upper_bounds,
                            RangeBounds(std::move(keys), spec.num_fragments));
  }

  out.fragments.reserve(spec.num_fragments);
  for (size_t i = 0; i < spec.num_fragments; ++i) {
    out.fragments.push_back(Node::Element(root.name()));
  }
  for (const NodePtr& record : root.children()) {
    if (record == nullptr) continue;
    size_t fragment = 0;
    if (record->is_element()) {
      fragment =
          out.map.FragmentForKey(PartitionKeyOf(*record, spec.partition_key));
    }
    out.fragments[fragment]->AddChild(record->Clone());
  }

  out.fragment_stats.reserve(spec.num_fragments);
  out.map.fragment_rows.reserve(spec.num_fragments);
  for (const NodePtr& fragment : out.fragments) {
    out.fragment_stats.push_back(metadata::AnalyzeCollectionTree(
        spec.source, spec.collection, *fragment, /*sample_rows=*/0));
    out.map.fragment_rows.push_back(out.fragment_stats.back().row_count);
  }
  out.merged_stats = metadata::MergeCollectionStats(out.fragment_stats);
  return out;
}

}  // namespace dist
}  // namespace nimble
