#ifndef NIMBLE_DIST_SHARD_CONNECTOR_H_
#define NIMBLE_DIST_SHARD_CONNECTOR_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "connector/connector.h"
#include "xml/node.h"

namespace nimble {
namespace dist {

/// Registry of the fragment *trees* behind a shard cluster: for each
/// sharded source:collection, one frozen tree per shard. Shard connectors
/// read a snapshot under the lock; Repartition swaps whole fragment sets
/// in one Install. Frozen trees make the handoff safe — a query that
/// fetched the old set keeps reading it while the new set serves.
class FragmentRegistry {
 public:
  FragmentRegistry() = default;
  FragmentRegistry(const FragmentRegistry&) = delete;
  FragmentRegistry& operator=(const FragmentRegistry&) = delete;

  /// Installs (or replaces) the fragment set for `source`:`collection`.
  void Install(const std::string& source, const std::string& collection,
               std::vector<ConstNodePtr> fragments) NIMBLE_EXCLUDES(mu_);

  /// Shard `shard`'s fragment, or nullptr when the collection is not
  /// sharded (or the shard index is out of range).
  ConstNodePtr Get(const std::string& source, const std::string& collection,
                   size_t shard) const NIMBLE_EXCLUDES(mu_);

  bool IsSharded(const std::string& source,
                 const std::string& collection) const NIMBLE_EXCLUDES(mu_);

  /// Per-fragment record counts for one sharded collection (monitor
  /// gauges); empty when unsharded.
  std::vector<size_t> FragmentRowCounts(
      const std::string& source, const std::string& collection) const
      NIMBLE_EXCLUDES(mu_);

  /// Bumps on every Install — folded into shard connectors' DataVersion so
  /// caches keyed on data versions see repartitions as data changes.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

 private:
  static std::string Key(const std::string& source,
                         const std::string& collection) {
    return source + "\x1f" + collection;
  }

  mutable Mutex mu_{LockRank::kShardFragments, "dist.fragments"};
  std::map<std::string, std::vector<ConstNodePtr>> fragments_
      NIMBLE_GUARDED_BY(mu_);
  std::atomic<uint64_t> epoch_{0};
};

/// The connector a shard engine sees for one global source: sharded
/// collections come from this shard's fragment in the registry; everything
/// else forwards to the real connector (small dimension collections are
/// replicated-by-reference this way).
///
/// Capabilities are deliberately empty — SQL/predicate pushdown into the
/// *inner* connector would read the whole unfragmented collection and break
/// shard isolation, so shard-local plans always fetch + match. (The inner
/// source's own indexes still serve the coordinator's non-distributed
/// plans.)
class ShardSourceConnector : public connector::Connector {
 public:
  /// `registry` and `inner` must outlive this connector; `inner` stays
  /// owned by the global catalog.
  ShardSourceConnector(const FragmentRegistry* registry,
                       connector::Connector* inner, size_t shard_index)
      : registry_(registry), inner_(inner), shard_index_(shard_index) {}

  const std::string& name() const override { return inner_->name(); }
  connector::SourceCapabilities capabilities() const override {
    return connector::SourceCapabilities{};
  }
  Status Ping() override { return inner_->Ping(); }
  std::vector<std::string> Collections() override {
    return inner_->Collections();
  }

  Result<NodePtr> FetchCollection(
      const std::string& collection,
      const connector::RequestContext& ctx) override;

  uint64_t DataVersion() override {
    // Mixed so either an inner-data change or a repartition moves it.
    return inner_->DataVersion() * 1000003u + registry_->epoch();
  }

  size_t shard_index() const { return shard_index_; }

 private:
  const FragmentRegistry* registry_;
  connector::Connector* inner_;
  const size_t shard_index_;
};

}  // namespace dist
}  // namespace nimble

#endif  // NIMBLE_DIST_SHARD_CONNECTOR_H_
