#ifndef NIMBLE_DIST_CLUSTER_H_
#define NIMBLE_DIST_CLUSTER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "dist/partition.h"
#include "dist/shard_connector.h"
#include "frontend/load_balancer.h"
#include "metadata/catalog.h"

namespace nimble {
namespace dist {

/// Shard-placement configuration.
struct ShardClusterOptions {
  size_t num_shards = 1;
  /// Template for every shard engine. The cluster overrides a few fields:
  /// `query_deadline_micros` becomes `shard_deadline_micros`,
  /// `max_inflight_queries` becomes `shard_max_inflight`, and
  /// `result_cache_bytes` is forced to 0 — shard catalogs never receive
  /// update notifications (repartitioning replaces their data directly),
  /// so a shard-side result cache could serve stale fragments.
  core::EngineOptions engine_options;
  /// Per-shard query deadline on the shard engine's clock (0 = none). The
  /// straggler trigger: a shard that cannot answer in time fails with
  /// Timeout and the coordinator degrades to partial results.
  int64_t shard_deadline_micros = 0;
  /// Shard-engine admission scheduler in-flight cap (0 = scheduler off).
  size_t shard_max_inflight = 0;
  /// Test hooks, applied per shard at Init: adjust one shard's engine
  /// options (e.g. a private clock), or wrap one shard's source connectors
  /// (e.g. SimulatedSource latency injection for straggler tests).
  std::function<void(size_t shard, core::EngineOptions* options)>
      tweak_engine_options;
  std::function<std::unique_ptr<connector::Connector>(
      size_t shard, std::unique_ptr<connector::Connector> inner)>
      wrap_connector;
};

/// N in-process shard engines behind a frontend::LoadBalancer, each serving
/// its own catalog in which every global source is wrapped by a
/// ShardSourceConnector (sharded collections → this shard's fragment;
/// everything else forwarded). Mediated views are replicated into every
/// shard catalog in dependency order, so shard subplans can expand them
/// locally.
///
/// Lifecycle: construct → Partition(...) per sharded collection → Init()
/// → serve. Partition must precede Init only for statistics seeding;
/// fragment installs themselves are runtime-safe (Repartition swaps them
/// under the registry lock while queries run).
class ShardCluster {
 public:
  /// `catalog` is the coordinator-side global catalog (sources registered,
  /// views defined); must outlive the cluster.
  ShardCluster(metadata::Catalog* catalog, ShardClusterOptions options);
  ~ShardCluster();

  ShardCluster(const ShardCluster&) = delete;
  ShardCluster& operator=(const ShardCluster&) = delete;

  /// Splits one collection across the shards: fetches it from the global
  /// source, partitions per `spec`, registers the FragmentMap in the global
  /// catalog, installs the fragment trees, and seeds statistics — merged
  /// stats into the global catalog, per-fragment stats into each shard
  /// catalog (once Init ran).
  Status Partition(const PartitionSpec& spec);

  /// Builds the shard catalogs/engines and subscribes the repartition
  /// listener (Catalog::NotifySourceUpdated on a source with sharded
  /// collections re-splits them with the existing topology).
  Status Init();

  /// Re-splits every sharded collection of `source_name` using its
  /// registered fragment map, then swaps the fragment sets in place.
  Status Repartition(const std::string& source_name);

  size_t num_shards() const { return options_.num_shards; }
  core::IntegrationEngine* shard_engine(size_t i) {
    return balancer_.engine(i);
  }
  frontend::LoadBalancer& balancer() { return balancer_; }
  const FragmentRegistry& registry() const { return registry_; }
  metadata::Catalog* catalog() { return catalog_; }
  const ShardClusterOptions& options() const { return options_; }

  /// Number of Repartition passes taken (monitor gauge).
  uint64_t repartitions() const {
    return repartitions_.load(std::memory_order_relaxed);
  }

 private:
  /// Splits a fetched collection tree per the map's existing topology and
  /// installs the result; refreshes shard statistics.
  Status InstallPartition(const PartitionSpec& spec, const Node& tree);

  metadata::Catalog* catalog_;
  ShardClusterOptions options_;
  FragmentRegistry registry_;
  /// Shard catalogs are declared before the balancer (whose engines
  /// reference them) so engines drain before their catalogs die.
  std::vector<std::unique_ptr<metadata::Catalog>> shard_catalogs_;
  frontend::LoadBalancer balancer_;
  uint64_t catalog_listener_token_ = 0;
  std::atomic<uint64_t> repartitions_{0};
  bool initialized_ = false;
};

}  // namespace dist
}  // namespace nimble

#endif  // NIMBLE_DIST_CLUSTER_H_
