#ifndef NIMBLE_OPT_CARDINALITY_H_
#define NIMBLE_OPT_CARDINALITY_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/tuple.h"
#include "metadata/statistics.h"
#include "xmlql/ast.h"

namespace nimble {
namespace opt {

/// Default selectivities when no column statistics apply — the classic
/// System R fallbacks. Kept public so tests and the cost model agree.
constexpr double kDefaultEqSelectivity = 0.1;
constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;
constexpr double kDefaultLikeSelectivity = 0.25;
constexpr double kDefaultNeSelectivity = 0.9;

/// Maps each variable bound by a fragment's pattern to the statistics
/// column it reads: a record's scalar child with `$v` content maps to the
/// child's tag, an attribute binding `name=$v` maps to "@name" — the same
/// flat record shape Analyze() collects. Records are the pattern root's
/// children (or the root itself for descendant-axis patterns); variables
/// bound elsewhere (nested elements, ELEMENT_AS) have no column and are
/// omitted.
std::map<std::string, std::string> VariableColumns(
    const xmlql::ElementPattern& root);

/// Selectivity of `column op literal`. Equality uses 1/NDV (1/rows when the
/// column is unique); ranges interpolate the literal's position inside
/// [min, max] for numeric columns; LIKE and everything else fall back to
/// the defaults above. `row_count` < 0 means unknown.
double ConditionSelectivity(xmlql::Condition::Op op, const Value& literal,
                            const metadata::ColumnStats* stats,
                            double row_count);

/// Estimated output rows of one fragment: the collection's row count scaled
/// by the selectivity of every local condition that compares a mapped
/// variable against a literal (variable-variable conditions get the
/// equality default). Returns a negative value when `stats` has no usable
/// row count — the caller falls back to the materialized size.
double EstimateFragmentRows(
    const metadata::CollectionStats& stats,
    const std::map<std::string, std::string>& variable_columns,
    const std::vector<const xmlql::Condition*>& local_conditions);

/// Join selectivity for an equi-join over a shared variable with the given
/// per-side distinct counts: 1/max(ndv_left, ndv_right) — the containment
/// assumption (the smaller key domain is contained in the larger).
double JoinSelectivity(double ndv_left, double ndv_right);

/// KMV distinct estimate over one materialized batch column. Node bindings
/// hash by identity-free deep content, so the estimate is usable for any
/// slot; used when the catalog has no column mapped to a join variable.
double ColumnDistinctEstimate(const algebra::TupleBatch& data, size_t slot);

}  // namespace opt
}  // namespace nimble

#endif  // NIMBLE_OPT_CARDINALITY_H_
