#ifndef NIMBLE_OPT_COST_MODEL_H_
#define NIMBLE_OPT_COST_MODEL_H_

#include <algorithm>
#include <cstddef>

namespace nimble {
namespace opt {

/// Abstract per-row execution costs for the physical operators the engine
/// can choose between. Units are arbitrary "row touches"; only ratios
/// matter. The constants mirror the executors: a hash-join build row costs
/// more than a probe row (hashing + chain insertion), a nested-loop join
/// touches the full cross product, and a bind join pays per shipped IN-list
/// key on top of the remote scan it prunes.
struct CostModel {
  double hash_build_cost = 2.0;   ///< per build-side row.
  double hash_probe_cost = 1.0;   ///< per probe-side row.
  double output_cost = 1.0;       ///< per emitted row (any join).
  double nested_loop_cost = 1.0;  ///< per (left, right) pair compared.
  /// A bind join stops paying for itself when the IN-list already covers
  /// most of the remote column's distinct values: the list prunes almost
  /// nothing but still costs translation, shipping and remote filtering.
  double bind_join_max_coverage = 0.8;

  /// Cost of hash-joining the pair, given the chosen build side.
  double HashJoinCost(double build_rows, double probe_rows,
                      double output_rows) const {
    return hash_build_cost * std::max(build_rows, 0.0) +
           hash_probe_cost * std::max(probe_rows, 0.0) +
           output_cost * std::max(output_rows, 0.0);
  }

  /// Cost of a nested-loop (cross-product) join of the pair.
  double NestedLoopJoinCost(double left_rows, double right_rows,
                            double output_rows) const {
    return nested_loop_cost * std::max(left_rows, 0.0) *
               std::max(right_rows, 0.0) +
           output_cost * std::max(output_rows, 0.0);
  }

  /// Build side for a hash join: build on the smaller input. Ties keep the
  /// executor's historical default (build right), so plans only change when
  /// the estimates actually order the inputs.
  bool BuildLeft(double left_rows, double right_rows) const {
    return left_rows < right_rows;
  }

  /// Whether shipping `num_keys` IN-list keys against a remote column with
  /// `column_ndv` distinct values is worth it (per-source pushdown depth).
  /// Unknown NDV (< 0) keeps the historical always-bind behavior.
  bool UseBindJoin(size_t num_keys, double column_ndv) const {
    if (column_ndv < 1.0) return true;
    return static_cast<double>(num_keys) <=
           bind_join_max_coverage * column_ndv;
  }
};

}  // namespace opt
}  // namespace nimble

#endif  // NIMBLE_OPT_COST_MODEL_H_
