#ifndef NIMBLE_OPT_COST_MODEL_H_
#define NIMBLE_OPT_COST_MODEL_H_

#include <algorithm>
#include <cstddef>

namespace nimble {
namespace opt {

/// Abstract per-row execution costs for the physical operators the engine
/// can choose between. Units are arbitrary "row touches"; only ratios
/// matter. The constants mirror the executors: a hash-join build row costs
/// more than a probe row (hashing + chain insertion), a nested-loop join
/// touches the full cross product, and a bind join pays per shipped IN-list
/// key on top of the remote scan it prunes.
struct CostModel {
  double hash_build_cost = 2.0;   ///< per build-side row.
  double hash_probe_cost = 1.0;   ///< per probe-side row.
  double output_cost = 1.0;       ///< per emitted row (any join).
  double nested_loop_cost = 1.0;  ///< per (left, right) pair compared.
  /// A bind join stops paying for itself when the IN-list already covers
  /// most of the remote column's distinct values: the list prunes almost
  /// nothing but still costs translation, shipping and remote filtering.
  double bind_join_max_coverage = 0.8;
  /// Per-key cost of one secondary-index probe (hash lookup + row fetch).
  double index_probe_cost = 4.0;
  /// Per-row cost of a full collection scan (the alternative an index
  /// nested-loop join avoids).
  double scan_cost = 1.0;
  /// Fixed per-shard overhead of a scatter: subplan print/parse, dispatch
  /// through the pool, and the gather-side bookkeeping. In "row touches" so
  /// it trades off directly against the per-row work it parallelizes.
  double scatter_overhead_per_shard = 50.0;
  /// Per-row cost of the gather-side k-way merge (heap pop + comparison).
  double merge_cost_per_row = 1.0;

  /// Cost of hash-joining the pair, given the chosen build side.
  double HashJoinCost(double build_rows, double probe_rows,
                      double output_rows) const {
    return hash_build_cost * std::max(build_rows, 0.0) +
           hash_probe_cost * std::max(probe_rows, 0.0) +
           output_cost * std::max(output_rows, 0.0);
  }

  /// Cost of a nested-loop (cross-product) join of the pair.
  double NestedLoopJoinCost(double left_rows, double right_rows,
                            double output_rows) const {
    return nested_loop_cost * std::max(left_rows, 0.0) *
               std::max(right_rows, 0.0) +
           output_cost * std::max(output_rows, 0.0);
  }

  /// Build side for a hash join: build on the smaller input. Ties keep the
  /// executor's historical default (build right), so plans only change when
  /// the estimates actually order the inputs.
  bool BuildLeft(double left_rows, double right_rows) const {
    return left_rows < right_rows;
  }

  /// Whether shipping `num_keys` IN-list keys against a remote column with
  /// `column_ndv` distinct values is worth it (per-source pushdown depth).
  /// Unknown NDV (< 0) keeps the historical always-bind behavior.
  bool UseBindJoin(size_t num_keys, double column_ndv) const {
    if (column_ndv < 1.0) return true;
    return static_cast<double>(num_keys) <=
           bind_join_max_coverage * column_ndv;
  }

  /// Cost of an index nested-loop join: one index probe per IN-list key.
  double IndexNestedLoopCost(size_t num_keys) const {
    return index_probe_cost * static_cast<double>(num_keys);
  }

  /// Whether probing a secondary index once per IN-list key beats scanning
  /// the whole table. Without an index (or with unknown table size) the
  /// answer is no — the caller falls back to the coverage-gated bind join.
  /// This can rescue an IN-list the coverage gate rejected: covering 100% of
  /// a 1M-row table with 1k index probes is still 250x cheaper than the
  /// scan the coverage gate would otherwise force.
  bool UseIndexNestedLoop(size_t num_keys, double table_rows,
                          bool has_index) const {
    if (!has_index || table_rows < 1.0) return false;
    return IndexNestedLoopCost(num_keys) < scan_cost * table_rows;
  }

  /// Total cost of scatter-gathering `total_rows` across `num_shards`
  /// engines that each scan their fragment in parallel, then merging
  /// `merged_rows` at the coordinator. Used by EXPLAIN to annotate the
  /// fan-out decision; per-shard work divides because shards run
  /// concurrently.
  double ScatterGatherCost(double total_rows, size_t num_shards,
                           double merged_rows) const {
    const double shards = static_cast<double>(std::max<size_t>(num_shards, 1));
    return scatter_overhead_per_shard * shards +
           scan_cost * std::max(total_rows, 0.0) / shards +
           merge_cost_per_row * std::max(merged_rows, 0.0);
  }
};

}  // namespace opt
}  // namespace nimble

#endif  // NIMBLE_OPT_COST_MODEL_H_
