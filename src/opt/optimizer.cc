#include "opt/optimizer.h"

#include <algorithm>

#include "opt/cardinality.h"

namespace nimble {
namespace opt {

namespace {

struct PlanEntry {
  std::unique_ptr<algebra::Operator> op;
  /// Legacy: materialized size. Cost-based: estimated output rows.
  double size_estimate = 0.0;
  std::map<std::string, double> var_ndv;
};

bool SharesVariable(const algebra::Operator& a, const algebra::Operator& b) {
  for (const std::string& var : a.schema().variables()) {
    if (b.schema().SlotOf(var).has_value()) return true;
  }
  return false;
}

std::vector<std::string> SharedVariables(const algebra::Operator& a,
                                         const algebra::Operator& b) {
  std::vector<std::string> shared;
  for (const std::string& var : a.schema().variables()) {
    if (b.schema().SlotOf(var).has_value()) shared.push_back(var);
  }
  return shared;
}

double NdvOrRows(const PlanEntry& e, const std::string& var) {
  auto it = e.var_ndv.find(var);
  // A variable with no distinct estimate is assumed all-distinct — the
  // conservative choice (smallest join selectivity it can justify).
  return it != e.var_ndv.end() ? it->second : std::max(e.size_estimate, 1.0);
}

/// Estimated output of hash-joining the pair on their shared variables.
double EstimateJoinOutput(const PlanEntry& l, const PlanEntry& r,
                          const std::vector<std::string>& shared) {
  double out = std::max(l.size_estimate, 0.0) * std::max(r.size_estimate, 0.0);
  for (const std::string& var : shared) {
    out *= JoinSelectivity(NdvOrRows(l, var), NdvOrRows(r, var));
  }
  return out;
}

/// Selectivity of one cross-fragment condition over the joined entry,
/// using per-variable NDV for equality and the defaults otherwise.
double CrossConditionSelectivity(const xmlql::Condition& cond,
                                 const std::map<std::string, double>& ndv) {
  using Op = xmlql::Condition::Op;
  switch (cond.op) {
    case Op::kEq: {
      double best = -1.0;
      for (const std::string& var : cond.Variables()) {
        auto it = ndv.find(var);
        if (it != ndv.end()) best = std::max(best, it->second);
      }
      if (best >= 1.0) return std::min(1.0, 1.0 / best);
      return kDefaultEqSelectivity;
    }
    case Op::kNe:
      return kDefaultNeSelectivity;
    case Op::kLike:
      return kDefaultLikeSelectivity;
    default:
      return kDefaultRangeSelectivity;
  }
}

/// Merged per-variable NDV after a join: a shared key keeps the smaller
/// domain (containment); every NDV is capped by the output row count.
std::map<std::string, double> MergeNdv(const PlanEntry& l, const PlanEntry& r,
                                       double out_rows) {
  std::map<std::string, double> merged = l.var_ndv;
  for (const auto& [var, ndv] : r.var_ndv) {
    auto it = merged.find(var);
    if (it == merged.end()) {
      merged[var] = ndv;
    } else {
      it->second = std::min(it->second, ndv);
    }
  }
  double cap = std::max(out_rows, 1.0);
  for (auto& [var, ndv] : merged) ndv = std::min(ndv, cap);
  return merged;
}

/// Binds the cross conditions that the joined schema now covers; the rest
/// stay pending. Shared by both modes so the Filter placement (and thus
/// result) is identical.
Result<std::unique_ptr<algebra::Operator>> AttachReadyConditions(
    std::unique_ptr<algebra::Operator> joined,
    std::vector<const xmlql::Condition*>* pending,
    std::vector<const xmlql::Condition*>* newly_attached) {
  std::vector<algebra::BoundCondition> newly_bound;
  std::vector<const xmlql::Condition*> still_pending;
  for (const xmlql::Condition* cond : *pending) {
    bool covered = true;
    for (const std::string& var : cond->Variables()) {
      if (!joined->schema().SlotOf(var).has_value()) {
        covered = false;
        break;
      }
    }
    if (covered) {
      NIMBLE_ASSIGN_OR_RETURN(
          algebra::BoundCondition bc,
          algebra::BoundCondition::Bind(*cond, joined->schema()));
      newly_bound.push_back(bc);
      if (newly_attached != nullptr) newly_attached->push_back(cond);
    } else {
      still_pending.push_back(cond);
    }
  }
  *pending = std::move(still_pending);
  if (!newly_bound.empty()) {
    joined = std::make_unique<algebra::Filter>(std::move(joined),
                                               std::move(newly_bound));
  }
  return joined;
}

/// The pre-optimizer heuristic, preserved verbatim as the ablation arm:
/// prefer pairs sharing a variable, tie-break on the smallest product of
/// materialized sizes; hash joins always build right; no annotations.
Result<JoinTreeResult> BuildLegacy(
    std::vector<PlanEntry> entries,
    std::vector<const xmlql::Condition*> pending) {
  while (entries.size() > 1) {
    size_t best_i = 0, best_j = 1;
    bool best_shared = false;
    double best_cost = 0;
    bool found = false;
    for (size_t i = 0; i < entries.size(); ++i) {
      for (size_t j = i + 1; j < entries.size(); ++j) {
        bool shared = SharesVariable(*entries[i].op, *entries[j].op);
        double cost = entries[i].size_estimate * entries[j].size_estimate;
        bool better = !found || (shared && !best_shared) ||
                      (shared == best_shared && cost < best_cost);
        if (better) {
          best_i = i;
          best_j = j;
          best_shared = shared;
          best_cost = cost;
          found = true;
        }
      }
    }

    PlanEntry left = std::move(entries[best_i]);
    PlanEntry right = std::move(entries[best_j]);
    entries.erase(entries.begin() + static_cast<ptrdiff_t>(best_j));
    entries.erase(entries.begin() + static_cast<ptrdiff_t>(best_i));

    PlanEntry joined;
    if (best_shared) {
      joined.op = std::make_unique<algebra::HashJoin>(std::move(left.op),
                                                      std::move(right.op));
      joined.size_estimate = std::max(left.size_estimate, right.size_estimate);
    } else {
      joined.op = std::make_unique<algebra::NestedLoopJoin>(
          std::move(left.op), std::move(right.op),
          std::vector<algebra::BoundCondition>{});
      joined.size_estimate = left.size_estimate * right.size_estimate;
    }
    NIMBLE_ASSIGN_OR_RETURN(
        joined.op,
        AttachReadyConditions(std::move(joined.op), &pending, nullptr));
    entries.push_back(std::move(joined));
  }

  JoinTreeResult result;
  result.root = std::move(entries[0].op);
  if (!pending.empty()) {
    std::vector<algebra::BoundCondition> bound;
    for (const xmlql::Condition* cond : pending) {
      NIMBLE_ASSIGN_OR_RETURN(
          algebra::BoundCondition bc,
          algebra::BoundCondition::Bind(*cond, result.root->schema()));
      bound.push_back(bc);
    }
    result.root = std::make_unique<algebra::Filter>(std::move(result.root),
                                                    std::move(bound));
  }
  result.est_rows = -1.0;
  return result;
}

Result<JoinTreeResult> BuildCostBased(
    std::vector<PlanEntry> entries,
    std::vector<const xmlql::Condition*> pending, const CostModel& model) {
  while (entries.size() > 1) {
    // Greedy smallest-intermediate-first: among variable-sharing pairs
    // (hash-joinable — required for correctness when a variable repeats),
    // minimize estimated execution cost plus estimated output. Cross
    // products are a last resort, costed the same way.
    size_t best_i = 0, best_j = 1;
    bool best_shared = false;
    double best_score = 0;
    double best_out = 0;
    bool found = false;
    for (size_t i = 0; i < entries.size(); ++i) {
      for (size_t j = i + 1; j < entries.size(); ++j) {
        const PlanEntry& l = entries[i];
        const PlanEntry& r = entries[j];
        std::vector<std::string> shared = SharedVariables(*l.op, *r.op);
        double out, score;
        if (!shared.empty()) {
          out = EstimateJoinOutput(l, r, shared);
          double build = std::min(l.size_estimate, r.size_estimate);
          double probe = std::max(l.size_estimate, r.size_estimate);
          score = model.HashJoinCost(build, probe, out) + out;
        } else {
          out = std::max(l.size_estimate, 0.0) * std::max(r.size_estimate, 0.0);
          score = model.NestedLoopJoinCost(l.size_estimate, r.size_estimate,
                                           out) +
                  out;
        }
        bool better = !found || (!shared.empty() && !best_shared) ||
                      (!shared.empty() == best_shared && score < best_score);
        if (better) {
          best_i = i;
          best_j = j;
          best_shared = !shared.empty();
          best_score = score;
          best_out = out;
          found = true;
        }
      }
    }

    PlanEntry left = std::move(entries[best_i]);
    PlanEntry right = std::move(entries[best_j]);
    entries.erase(entries.begin() + static_cast<ptrdiff_t>(best_j));
    entries.erase(entries.begin() + static_cast<ptrdiff_t>(best_i));

    PlanEntry joined;
    joined.size_estimate = best_out;
    joined.var_ndv = MergeNdv(left, right, best_out);
    if (best_shared) {
      bool build_left =
          model.BuildLeft(left.size_estimate, right.size_estimate);
      joined.op = std::make_unique<algebra::HashJoin>(
          std::move(left.op), std::move(right.op), build_left);
    } else {
      joined.op = std::make_unique<algebra::NestedLoopJoin>(
          std::move(left.op), std::move(right.op),
          std::vector<algebra::BoundCondition>{});
    }
    joined.op->set_estimated_rows(joined.size_estimate);

    std::vector<const xmlql::Condition*> attached;
    NIMBLE_ASSIGN_OR_RETURN(
        joined.op,
        AttachReadyConditions(std::move(joined.op), &pending, &attached));
    for (const xmlql::Condition* cond : attached) {
      joined.size_estimate *= CrossConditionSelectivity(*cond, joined.var_ndv);
    }
    if (!attached.empty()) {
      joined.op->set_estimated_rows(joined.size_estimate);
      double cap = std::max(joined.size_estimate, 1.0);
      for (auto& [var, ndv] : joined.var_ndv) ndv = std::min(ndv, cap);
    }
    entries.push_back(std::move(joined));
  }

  JoinTreeResult result;
  double est = entries[0].size_estimate;
  std::map<std::string, double> ndv = std::move(entries[0].var_ndv);
  result.root = std::move(entries[0].op);
  if (!pending.empty()) {
    std::vector<algebra::BoundCondition> bound;
    for (const xmlql::Condition* cond : pending) {
      NIMBLE_ASSIGN_OR_RETURN(
          algebra::BoundCondition bc,
          algebra::BoundCondition::Bind(*cond, result.root->schema()));
      bound.push_back(bc);
      est *= CrossConditionSelectivity(*cond, ndv);
    }
    result.root = std::make_unique<algebra::Filter>(std::move(result.root),
                                                    std::move(bound));
    result.root->set_estimated_rows(est);
  }
  result.est_rows = est;
  return result;
}

}  // namespace

Result<JoinTreeResult> BuildJoinTree(
    std::vector<JoinInput> inputs,
    const std::vector<const xmlql::Condition*>& cross_conditions,
    const CostModel& model, bool cost_based) {
  if (inputs.empty()) {
    return Status::InvalidArgument("query has no patterns");
  }
  std::vector<PlanEntry> entries;
  entries.reserve(inputs.size());
  for (JoinInput& input : inputs) {
    PlanEntry entry;
    if (cost_based) {
      entry.size_estimate =
          input.est_rows >= 0.0 ? input.est_rows : input.actual_rows;
      entry.var_ndv = std::move(input.var_ndv);
      input.op->set_estimated_rows(entry.size_estimate);
    } else {
      entry.size_estimate = input.actual_rows;
    }
    entry.op = std::move(input.op);
    entries.push_back(std::move(entry));
  }
  std::vector<const xmlql::Condition*> pending = cross_conditions;
  return cost_based ? BuildCostBased(std::move(entries), std::move(pending),
                                     model)
                    : BuildLegacy(std::move(entries), std::move(pending));
}

}  // namespace opt
}  // namespace nimble
