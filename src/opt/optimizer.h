#ifndef NIMBLE_OPT_OPTIMIZER_H_
#define NIMBLE_OPT_OPTIMIZER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "common/result.h"
#include "opt/cost_model.h"
#include "xmlql/ast.h"

namespace nimble {
namespace opt {

/// One join-tree leaf: a fragment's scan operator plus the statistics the
/// optimizer plans with. `est_rows` is the catalog-based cardinality
/// estimate (< 0 = no statistics; the optimizer falls back to
/// `actual_rows`). `var_ndv` holds distinct-count estimates for the
/// variables this leaf binds — from catalog column sketches when the
/// variable maps to an analyzed column, else sketched from the
/// materialized batch.
struct JoinInput {
  std::unique_ptr<algebra::Operator> op;
  double est_rows = -1.0;
  double actual_rows = 0.0;
  std::map<std::string, double> var_ndv;
};

struct JoinTreeResult {
  std::unique_ptr<algebra::Operator> root;
  /// Estimated output rows of `root` (< 0 in legacy mode — no annotation).
  double est_rows = -1.0;
};

/// Builds the join tree over the fragment scans, attaching cross-fragment
/// conditions as Filters as soon as both sides are joined in.
///
/// `cost_based` = false replicates the legacy heuristic exactly (pairs
/// sharing variables first, then smallest product of *materialized* sizes;
/// hash-join builds on the right; no cost annotations) — the ablation arm
/// the benchmarks compare against.
///
/// `cost_based` = true orders greedily by estimated execution cost plus
/// estimated output (smallest intermediate first), picks the hash-join
/// build side with `model.BuildLeft`, and annotates every operator with
/// `est_rows` (verifier invariant I13). Join cardinality uses the
/// containment assumption 1/max(ndv) per shared variable; Filter
/// selectivity uses per-variable NDV for equality and the System R
/// defaults otherwise.
Result<JoinTreeResult> BuildJoinTree(
    std::vector<JoinInput> inputs,
    const std::vector<const xmlql::Condition*>& cross_conditions,
    const CostModel& model, bool cost_based);

}  // namespace opt
}  // namespace nimble

#endif  // NIMBLE_OPT_OPTIMIZER_H_
