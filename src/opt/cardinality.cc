#include "opt/cardinality.h"

#include <algorithm>

namespace nimble {
namespace opt {

namespace {

/// Clamps a selectivity into (0, 1]: zero would collapse every downstream
/// estimate, and the formulas above can mathematically overshoot 1.
double Clamp01(double s) { return std::min(1.0, std::max(1e-6, s)); }

}  // namespace

namespace {

/// Maps one record-level pattern: the record's attribute bindings become
/// "@name" columns and its scalar children's content bindings become tag
/// columns — the flat record shape Analyze() collects.
void MapRecordPattern(const xmlql::ElementPattern& record,
                      std::map<std::string, std::string>* mapping) {
  for (const xmlql::AttrPattern& attr : record.attributes) {
    if (attr.is_variable && !attr.variable.empty()) {
      mapping->emplace(attr.variable, "@" + attr.name);
    }
  }
  for (const std::unique_ptr<xmlql::ElementPattern>& column : record.children) {
    if (column == nullptr) continue;
    if (!column->content_variable.empty() && column->tag != "*") {
      mapping->emplace(column->content_variable, column->tag);
    }
  }
}

}  // namespace

std::map<std::string, std::string> VariableColumns(
    const xmlql::ElementPattern& root) {
  std::map<std::string, std::string> mapping;
  // Normal shape: the pattern root matches the collection root and each of
  // its children matches a record, so the statistics columns sit two levels
  // down (<orders><row><cust>$c</cust>… — $c reads column "cust").
  for (const std::unique_ptr<xmlql::ElementPattern>& record : root.children) {
    if (record != nullptr) MapRecordPattern(*record, &mapping);
  }
  // Descendant-axis shape (<//entry><employee>$e</employee>…): the root
  // itself matches the records. First mapping wins on variable collision.
  MapRecordPattern(root, &mapping);
  return mapping;
}

double ConditionSelectivity(xmlql::Condition::Op op, const Value& literal,
                            const metadata::ColumnStats* stats,
                            double row_count) {
  using Op = xmlql::Condition::Op;
  switch (op) {
    case Op::kEq: {
      if (stats == nullptr) return kDefaultEqSelectivity;
      if (stats->unique && row_count > 0) return Clamp01(1.0 / row_count);
      return Clamp01(1.0 / stats->distinct());
    }
    case Op::kNe: {
      if (stats == nullptr) return kDefaultNeSelectivity;
      return Clamp01(1.0 - 1.0 / stats->distinct());
    }
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      if (stats == nullptr || !literal.is_numeric() ||
          !stats->min.is_numeric() || !stats->max.is_numeric()) {
        return kDefaultRangeSelectivity;
      }
      double lo = stats->min.NumericValue();
      double hi = stats->max.NumericValue();
      double v = literal.NumericValue();
      if (hi <= lo) {
        // Single-point domain: the comparison either keeps all rows or
        // (nearly) none.
        bool keeps = (op == Op::kLt && lo < v) || (op == Op::kLe && lo <= v) ||
                     (op == Op::kGt && lo > v) || (op == Op::kGe && lo >= v);
        return keeps ? 1.0 : Clamp01(0.0);
      }
      // Linear interpolation of the literal's position in [min, max].
      double frac = (v - lo) / (hi - lo);
      frac = std::min(1.0, std::max(0.0, frac));
      if (op == Op::kLt || op == Op::kLe) return Clamp01(frac);
      return Clamp01(1.0 - frac);
    }
    case Op::kLike:
      return kDefaultLikeSelectivity;
  }
  return kDefaultRangeSelectivity;
}

double EstimateFragmentRows(
    const metadata::CollectionStats& stats,
    const std::map<std::string, std::string>& variable_columns,
    const std::vector<const xmlql::Condition*>& local_conditions) {
  if (stats.row_count < 0.0) return -1.0;
  double rows = stats.row_count;
  for (const xmlql::Condition* cond : local_conditions) {
    if (cond == nullptr) continue;
    // Normalize to column-vs-literal: exactly one side a mapped variable.
    const xmlql::Condition::Operand* var_side = nullptr;
    const xmlql::Condition::Operand* lit_side = nullptr;
    xmlql::Condition::Op op = cond->op;
    if (cond->lhs.is_variable && !cond->rhs.is_variable) {
      var_side = &cond->lhs;
      lit_side = &cond->rhs;
    } else if (!cond->lhs.is_variable && cond->rhs.is_variable) {
      var_side = &cond->rhs;
      lit_side = &cond->lhs;
      // Flip the comparison so the variable is on the left.
      using Op = xmlql::Condition::Op;
      switch (op) {
        case Op::kLt: op = Op::kGt; break;
        case Op::kLe: op = Op::kGe; break;
        case Op::kGt: op = Op::kLt; break;
        case Op::kGe: op = Op::kLe; break;
        default: break;
      }
    }
    double selectivity;
    if (var_side == nullptr) {
      // var-op-var within one fragment (or literal-literal): equality
      // default is the best we can say without joint statistics.
      selectivity = kDefaultEqSelectivity;
    } else {
      const metadata::ColumnStats* column = nullptr;
      auto it = variable_columns.find(var_side->variable);
      if (it != variable_columns.end()) column = stats.column(it->second);
      selectivity = ConditionSelectivity(op, lit_side->literal, column,
                                         stats.row_count);
      if (column != nullptr) {
        // Rows where the column is missing/null never pass a comparison.
        selectivity *= (1.0 - column->null_fraction);
      }
    }
    rows *= std::min(1.0, std::max(0.0, selectivity));
  }
  return rows;
}

double JoinSelectivity(double ndv_left, double ndv_right) {
  double ndv = std::max(std::max(ndv_left, ndv_right), 1.0);
  return 1.0 / ndv;
}

double ColumnDistinctEstimate(const algebra::TupleBatch& data, size_t slot) {
  metadata::DistinctSketch sketch;
  for (size_t i = 0; i < data.size(); ++i) {
    sketch.AddHash(
        metadata::DistinctSketch::HashValue(data.binding(slot, i).AsScalar()));
  }
  return std::max(1.0, sketch.Estimate());
}

}  // namespace opt
}  // namespace nimble
