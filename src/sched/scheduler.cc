#include "sched/scheduler.h"

#include <algorithm>
#include <cstdlib>

namespace nimble {
namespace sched {

namespace {

/// Sliding-window size for the queue-wait percentile gauges.
constexpr size_t kWaitWindow = 512;

constexpr char kRetryAfterKey[] = "retry_after_micros=";

std::string WithRetryAfter(std::string message, int64_t retry_after_micros) {
  message += "; ";
  message += kRetryAfterKey;
  message += std::to_string(retry_after_micros);
  return message;
}

}  // namespace

int64_t RetryAfterMicros(const Status& status) {
  const std::string& message = status.message();
  size_t pos = message.find(kRetryAfterKey);
  if (pos == std::string::npos) return 0;
  return std::atoll(message.c_str() + pos + sizeof(kRetryAfterKey) - 1);
}

/// One submission: queue bookkeeping plus the two continuation callbacks.
struct QueryScheduler::Entry {
  size_t id = 0;
  SubmitInfo info;
  int64_t enqueue_micros = 0;
  int64_t deadline_abs_micros = 0;  ///< 0 = none.
  RunFn run;
  DropFn drop;
  bool claimed = false;  ///< popped for dispatch; no longer cancellable.
  bool dropped = false;  ///< drop callback fired (or is being fired).
};

struct QueryScheduler::Tenant {
  /// This tenant's state within one priority class.
  struct PerClass {
    std::deque<EntryPtr> queue;
    uint64_t deficit = 0;  ///< DRR credits (unit cost per query).
    bool in_ring = false;  ///< member of the class's active-tenant ring.
  };

  std::string name;
  uint32_t weight = 1;
  std::map<int, PerClass> classes;
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t dropped = 0;
  size_t queued = 0;
};

/// Active tenants of one priority class, in deficit-round-robin order.
struct QueryScheduler::ClassQueue {
  std::deque<Tenant*> ring;
};

bool QueryScheduler::Submission::Cancel() {
  return scheduler_ != nullptr && scheduler_->CancelEntry(id_);
}

QueryScheduler::QueryScheduler(const SchedulerOptions& options, Clock* clock,
                               ThreadPool* pool)
    : options_([&options] {
        SchedulerOptions sanitized = options;
        if (sanitized.max_inflight_queries == 0) {
          sanitized.max_inflight_queries = 1;
        }
        if (sanitized.default_tenant_weight == 0) {
          sanitized.default_tenant_weight = 1;
        }
        return sanitized;
      }()),
      clock_(clock),
      pool_(pool) {
  wait_window_.reserve(kWaitWindow);
}

QueryScheduler::~QueryScheduler() {
  std::vector<std::pair<EntryPtr, Status>> dropped;
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    for (auto& [id, entry] : live_) {
      if (entry->dropped) continue;
      entry->dropped = true;
      Tenant* tenant = GetTenantLocked(entry->info.tenant);
      tenant->queued--;
      tenant->dropped++;
      dropped_cancelled_++;
      dropped.emplace_back(entry,
                           Status::Cancelled("scheduler shut down"));
    }
    live_.clear();
    queue_depth_ = 0;
  }
  for (auto& [entry, status] : dropped) entry->drop(status);
  MutexLock lock(mutex_);
  while (inflight_queries_ != 0) drained_.Wait(mutex_);
}

uint32_t QueryScheduler::WeightOf(const std::string& tenant) const {
  auto it = options_.tenant_weights.find(tenant);
  uint32_t weight =
      it == options_.tenant_weights.end() ? options_.default_tenant_weight
                                          : it->second;
  return weight == 0 ? 1 : weight;
}

QueryScheduler::Tenant* QueryScheduler::GetTenantLocked(
    const std::string& name) {
  std::unique_ptr<Tenant>& slot = tenants_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Tenant>();
    slot->name = name;
    slot->weight = WeightOf(name);
  }
  return slot.get();
}

int64_t QueryScheduler::EstimatedQueueWaitLocked() const {
  if (avg_service_micros_ <= 0) return 0;
  double workers = static_cast<double>(options_.max_inflight_queries);
  // Work ahead of a new arrival: the whole queue plus (on average) half of
  // whatever is already executing.
  double backlog = static_cast<double>(queue_depth_) +
                   0.5 * static_cast<double>(inflight_queries_);
  return static_cast<int64_t>(backlog * avg_service_micros_ / workers);
}

Result<std::shared_ptr<QueryScheduler::Submission>> QueryScheduler::Submit(
    const SubmitInfo& info, RunFn run, DropFn drop) {
  std::vector<EntryPtr> to_run;
  std::vector<std::pair<EntryPtr, Status>> dropped;
  auto submission = std::make_shared<Submission>();
  {
    MutexLock lock(mutex_);
    if (stopping_) return Status::Cancelled("scheduler is shutting down");
    Tenant* tenant = GetTenantLocked(info.tenant);
    submitted_++;
    tenant->submitted++;

    if (queue_depth_ >= options_.queue_capacity) {
      shed_queue_full_++;
      tenant->shed++;
      int64_t hint = std::max<int64_t>(EstimatedQueueWaitLocked(), 1000);
      return Status::ResourceExhausted(WithRetryAfter(
          "admission queue full (" + std::to_string(queue_depth_) + "/" +
              std::to_string(options_.queue_capacity) + " queued)",
          hint));
    }
    if (options_.load_shedding && info.deadline_micros > 0) {
      int64_t estimate = EstimatedQueueWaitLocked();
      if (estimate > info.deadline_micros) {
        // The query would expire in queue anyway; shed it now so the
        // client can back off instead of burning its budget waiting.
        shed_wait_deadline_++;
        tenant->shed++;
        return Status::ResourceExhausted(WithRetryAfter(
            "estimated queue wait " + std::to_string(estimate) +
                "us exceeds the query deadline (" +
                std::to_string(info.deadline_micros) + "us)",
            estimate));
      }
    }

    auto entry = std::make_shared<Entry>();
    entry->id = next_id_++;
    entry->info = info;
    entry->enqueue_micros = clock_->NowMicros();
    if (info.deadline_micros > 0) {
      entry->deadline_abs_micros = entry->enqueue_micros + info.deadline_micros;
    }
    entry->run = std::move(run);
    entry->drop = std::move(drop);
    live_[entry->id] = entry;

    auto& pc = tenant->classes[info.priority];
    pc.queue.push_back(entry);
    if (!pc.in_ring) {
      pc.in_ring = true;
      classes_[info.priority].ring.push_back(tenant);
    }
    queue_depth_++;
    tenant->queued++;

    submission->scheduler_ = this;
    submission->id_ = entry->id;
    DispatchLocked(&to_run, &dropped);
  }
  for (auto& [entry, status] : dropped) entry->drop(status);
  for (EntryPtr& entry : to_run) {
    pool_->Submit([this, entry] { RunEntry(entry); });
  }
  return submission;
}

QueryScheduler::EntryPtr QueryScheduler::PopNextLocked(
    std::vector<std::pair<EntryPtr, Status>>* dropped) {
  // Strict priority across classes; DRR between tenants within a class.
  for (auto& [cls, class_queue] : classes_) {
    std::deque<Tenant*>& ring = class_queue.ring;
    while (!ring.empty()) {
      Tenant* tenant = ring.front();
      auto& pc = tenant->classes[cls];
      // Clear cancelled tombstones and shed hopeless heads before spending
      // deficit: a dropped entry never consumes a worker *or* a credit.
      while (!pc.queue.empty()) {
        EntryPtr head = pc.queue.front();
        if (head->dropped) {
          pc.queue.pop_front();
          continue;
        }
        if (head->info.cancel != nullptr &&
            head->info.cancel->load(std::memory_order_relaxed)) {
          head->dropped = true;
          live_.erase(head->id);
          queue_depth_--;
          tenant->queued--;
          tenant->dropped++;
          dropped_cancelled_++;
          dropped->emplace_back(
              head, Status::Cancelled("query cancelled while queued"));
          pc.queue.pop_front();
          continue;
        }
        int64_t now = clock_->NowMicros();
        if (options_.load_shedding && head->deadline_abs_micros > 0 &&
            now >= head->deadline_abs_micros) {
          head->dropped = true;
          live_.erase(head->id);
          queue_depth_--;
          tenant->queued--;
          tenant->dropped++;
          dropped_expired_++;
          dropped->emplace_back(
              head, Status::Timeout(
                        "query deadline expired after " +
                        std::to_string(now - head->enqueue_micros) +
                        "us in the admission queue"));
          pc.queue.pop_front();
          continue;
        }
        break;
      }
      if (pc.queue.empty()) {
        pc.deficit = 0;
        pc.in_ring = false;
        ring.pop_front();
        continue;
      }
      if (pc.deficit == 0) {
        // Top up and move to the back: a weight-3 tenant banks 3 credits
        // per round, a weight-1 tenant banks 1 — the 3:1 drain ratio.
        pc.deficit = std::max<uint32_t>(tenant->weight, 1);
        ring.pop_front();
        ring.push_back(tenant);
        continue;
      }
      EntryPtr entry = pc.queue.front();
      pc.queue.pop_front();
      pc.deficit--;
      entry->claimed = true;
      live_.erase(entry->id);
      queue_depth_--;
      tenant->queued--;
      if (pc.queue.empty()) {
        pc.deficit = 0;
        pc.in_ring = false;
        ring.pop_front();
      }
      return entry;
    }
  }
  return nullptr;
}

void QueryScheduler::DispatchLocked(
    std::vector<EntryPtr>* to_run,
    std::vector<std::pair<EntryPtr, Status>>* dropped) {
  if (stopping_) return;
  while (inflight_queries_ < options_.max_inflight_queries &&
         queue_depth_ > 0) {
    EntryPtr entry = PopNextLocked(dropped);
    if (entry == nullptr) break;  // only dropped entries were left
    if (options_.max_inflight_bytes > 0 && inflight_queries_ > 0 &&
        inflight_bytes_ + entry->info.estimated_bytes >
            options_.max_inflight_bytes) {
      // Byte budget exceeded: head-of-line wait until in-flight work
      // retires. (With nothing in flight an oversized query is admitted
      // alone rather than starved forever.) Undo the pop so DRR state and
      // queue order are exactly as before.
      Tenant* tenant = GetTenantLocked(entry->info.tenant);
      auto& pc = tenant->classes[entry->info.priority];
      entry->claimed = false;
      live_[entry->id] = entry;
      pc.queue.push_front(entry);
      pc.deficit++;
      if (!pc.in_ring) {
        pc.in_ring = true;
        classes_[entry->info.priority].ring.push_front(tenant);
      }
      queue_depth_++;
      tenant->queued++;
      break;
    }
    inflight_queries_++;
    inflight_bytes_ += entry->info.estimated_bytes;
    admitted_++;
    GetTenantLocked(entry->info.tenant)->admitted++;
    to_run->push_back(entry);
  }
}

void QueryScheduler::RunEntry(const EntryPtr& entry) {
  int64_t start = clock_->NowMicros();
  int64_t wait = std::max<int64_t>(start - entry->enqueue_micros, 0);
  {
    MutexLock lock(mutex_);
    if (wait_window_.size() < kWaitWindow) {
      wait_window_.push_back(wait);
    } else {
      wait_window_[wait_window_next_] = wait;
      wait_window_next_ = (wait_window_next_ + 1) % kWaitWindow;
    }
  }
  entry->run(wait);
  // On a VirtualClock concurrent queries charge one shared counter, so this
  // over-reads service time under concurrency — acceptable for an EWMA that
  // only feeds the shed-at-submit heuristic.
  int64_t service = std::max<int64_t>(clock_->NowMicros() - start, 0);

  std::vector<EntryPtr> to_run;
  std::vector<std::pair<EntryPtr, Status>> dropped;
  {
    MutexLock lock(mutex_);
    inflight_queries_--;
    inflight_bytes_ -= entry->info.estimated_bytes;
    completed_++;
    GetTenantLocked(entry->info.tenant)->completed++;
    avg_service_micros_ =
        avg_service_micros_ <= 0
            ? static_cast<double>(service)
            : 0.8 * avg_service_micros_ + 0.2 * static_cast<double>(service);
    DispatchLocked(&to_run, &dropped);
    if (inflight_queries_ == 0) drained_.NotifyAll();
  }
  for (auto& [e, status] : dropped) e->drop(status);
  for (EntryPtr& e : to_run) {
    pool_->Submit([this, e] { RunEntry(e); });
  }
}

bool QueryScheduler::CancelEntry(size_t id) {
  EntryPtr entry;
  {
    MutexLock lock(mutex_);
    auto it = live_.find(id);
    if (it == live_.end()) return false;  // already dispatched or dropped
    entry = it->second;
    entry->dropped = true;
    live_.erase(it);
    queue_depth_--;
    Tenant* tenant = GetTenantLocked(entry->info.tenant);
    tenant->queued--;
    tenant->dropped++;
    dropped_cancelled_++;
  }
  entry->drop(Status::Cancelled("query cancelled while queued"));
  return true;
}

SchedulerStats QueryScheduler::stats() const {
  SchedulerStats out;
  std::vector<int64_t> waits;
  {
    MutexLock lock(mutex_);
    out.submitted = submitted_;
    out.admitted = admitted_;
    out.completed = completed_;
    out.shed_queue_full = shed_queue_full_;
    out.shed_wait_deadline = shed_wait_deadline_;
    out.dropped_expired = dropped_expired_;
    out.dropped_cancelled = dropped_cancelled_;
    out.queue_depth = queue_depth_;
    out.inflight_queries = inflight_queries_;
    out.inflight_bytes = inflight_bytes_;
    for (const auto& [name, tenant] : tenants_) {
      TenantStats ts;
      ts.tenant = name;
      ts.weight = tenant->weight;
      ts.submitted = tenant->submitted;
      ts.admitted = tenant->admitted;
      ts.completed = tenant->completed;
      ts.shed = tenant->shed;
      ts.dropped = tenant->dropped;
      ts.queued = tenant->queued;
      out.tenants.push_back(std::move(ts));
    }
    waits = wait_window_;
  }
  if (!waits.empty()) {
    std::sort(waits.begin(), waits.end());
    auto pct = [&waits](double p) {
      size_t index = static_cast<size_t>(p * static_cast<double>(waits.size() - 1));
      return waits[index];
    };
    out.queue_wait_p50_micros = pct(0.50);
    out.queue_wait_p90_micros = pct(0.90);
    out.queue_wait_p99_micros = pct(0.99);
  }
  return out;
}

}  // namespace sched
}  // namespace nimble
