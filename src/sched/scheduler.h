#ifndef NIMBLE_SCHED_SCHEDULER_H_
#define NIMBLE_SCHED_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace nimble {
namespace sched {

/// Admission-control and QoS knobs (mirrored by the `EngineOptions` fields
/// of the same names).
struct SchedulerOptions {
  /// Token-based concurrency limiter: at most this many queries execute at
  /// once; the rest wait in the admission queue. Must be >= 1.
  size_t max_inflight_queries = 4;
  /// Byte-based limiter: the sum of the in-flight queries' estimated result
  /// bytes stays under this budget (0 = no byte gate). A query whose
  /// estimate does not fit waits at the head of the queue unless nothing is
  /// in flight (an oversized query is admitted alone rather than starved).
  size_t max_inflight_bytes = 0;
  /// Bounded admission queue: submissions beyond this many *queued* entries
  /// are rejected with ResourceExhausted (in-flight queries do not count).
  size_t queue_capacity = 64;
  /// Load shedding beyond the queue-full rejection: shed at submit when the
  /// estimated queue wait already exceeds the query's deadline, and drop
  /// deadline-expired entries at dequeue instead of wasting a worker on
  /// them. Off = entries are admitted and dispatched regardless (they then
  /// time out mid-execution — the E6(d) collapse baseline).
  bool load_shedding = true;
  /// Weighted-fair share per tenant (deficit round robin, unit cost per
  /// query): a tenant with weight 3 drains 3 queries for every 1 of a
  /// weight-1 tenant while both have work queued. Unlisted tenants get
  /// `default_tenant_weight`. Weights of 0 are treated as 1.
  std::map<std::string, uint32_t> tenant_weights;
  uint32_t default_tenant_weight = 1;
};

/// What the submitter tells the scheduler about one query.
struct SubmitInfo {
  /// Fair-share accounting bucket; "" is the default tenant.
  std::string tenant;
  /// Strict priority class: class 0 always dequeues before class 1, and so
  /// on; weighted-fair sharing applies between tenants *within* a class.
  int priority = 0;
  /// Relative deadline on the scheduler's clock (0 = none). Queue wait
  /// counts against it: entries that expire while queued are dropped with
  /// Timeout at dequeue, and submissions whose estimated queue wait already
  /// exceeds it are shed with ResourceExhausted.
  int64_t deadline_micros = 0;
  /// Estimated result bytes, charged against `max_inflight_bytes`.
  size_t estimated_bytes = 0;
  /// Optional caller-owned cancellation flag: checked at dequeue so a query
  /// cancelled while queued is dropped without executing.
  const std::atomic<bool>* cancel = nullptr;
};

/// Per-tenant accounting snapshot.
struct TenantStats {
  std::string tenant;
  uint32_t weight = 1;
  uint64_t submitted = 0;
  uint64_t admitted = 0;   ///< dispatched to a worker.
  uint64_t completed = 0;
  uint64_t shed = 0;       ///< rejected at submit (full / hopeless wait).
  uint64_t dropped = 0;    ///< expired or cancelled while queued.
  size_t queued = 0;       ///< currently waiting.
};

/// Scheduler-wide accounting snapshot (the SystemMonitor gauges).
struct SchedulerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t shed_queue_full = 0;     ///< rejected: bounded queue at capacity.
  uint64_t shed_wait_deadline = 0;  ///< rejected: queue wait > deadline.
  uint64_t dropped_expired = 0;     ///< deadline passed while queued.
  uint64_t dropped_cancelled = 0;   ///< cancelled while queued.
  size_t queue_depth = 0;
  size_t inflight_queries = 0;
  size_t inflight_bytes = 0;
  /// Queue-wait distribution over a sliding window of recent dispatches.
  int64_t queue_wait_p50_micros = 0;
  int64_t queue_wait_p90_micros = 0;
  int64_t queue_wait_p99_micros = 0;
  std::vector<TenantStats> tenants;

  uint64_t TotalShed() const { return shed_queue_full + shed_wait_deadline; }
};

/// Extracts the "retry_after_micros=<n>" hint a shed response carries in
/// its message; returns 0 when absent. Clients use it to back off instead
/// of hammering an overloaded engine.
int64_t RetryAfterMicros(const Status& status);

/// Query admission and scheduling: the layer between the front end and the
/// execution layer. Submissions either start executing immediately (a
/// concurrency token is free), wait in a bounded per-tenant weighted-fair
/// queue, or are shed with ResourceExhausted. The scheduler is policy only:
/// the queries themselves run on the caller-supplied worker pool, and the
/// scheduler knows them as opaque callbacks, so it layers under any
/// executor (`core::IntegrationEngine` wires it behind `Engine::Submit`).
///
/// Thread-safety: Submit, Submission::Cancel and stats() may be called from
/// any thread concurrently.
class QueryScheduler {
 public:
  /// Runs an admitted query; receives the time it waited in queue so the
  /// executor can charge the wait against the query deadline.
  using RunFn = std::function<void(int64_t queue_wait_micros)>;
  /// Consumes a queued entry that will never run (expired, cancelled, or
  /// scheduler shutdown) with the reason. Exactly one of run/drop fires for
  /// every accepted submission.
  using DropFn = std::function<void(const Status& status)>;

  /// A queued-or-running submission. Handles returned by Submit stay valid
  /// until the scheduler is destroyed.
  class Submission {
   public:
    /// Attempts to cancel before dispatch. True = the entry was still
    /// queued and its drop callback has fired with Cancelled; false = the
    /// query was already dispatched (or finished) — cancelling *execution*
    /// is the executor's job (cooperative flags).
    bool Cancel();

   private:
    friend class QueryScheduler;
    QueryScheduler* scheduler_ = nullptr;
    size_t id_ = 0;
  };

  /// `clock` times queue waits and deadlines; `pool` runs admitted queries.
  /// Both must outlive the scheduler.
  QueryScheduler(const SchedulerOptions& options, Clock* clock,
                 ThreadPool* pool);

  /// Drops every queued entry (Cancelled) and waits for in-flight queries
  /// to finish.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Admits, queues, or sheds one query. On success exactly one of
  /// `run`/`drop` will eventually be invoked (possibly before Submit
  /// returns, on a pool worker). A shed submission returns
  /// ResourceExhausted carrying a retry_after_micros hint and invokes
  /// neither callback.
  Result<std::shared_ptr<Submission>> Submit(const SubmitInfo& info,
                                             RunFn run, DropFn drop)
      NIMBLE_EXCLUDES(mutex_);

  SchedulerStats stats() const NIMBLE_EXCLUDES(mutex_);
  const SchedulerOptions& options() const { return options_; }

 private:
  struct Entry;
  struct Tenant;
  struct ClassQueue;
  using EntryPtr = std::shared_ptr<Entry>;

  uint32_t WeightOf(const std::string& tenant) const;
  Tenant* GetTenantLocked(const std::string& name) NIMBLE_REQUIRES(mutex_);
  /// Expected time a new submission would spend queued, from the EWMA
  /// service time and the backlog ahead of it. 0 until a completion has
  /// seeded the estimate.
  int64_t EstimatedQueueWaitLocked() const NIMBLE_REQUIRES(mutex_);
  /// Pops the next runnable entry by (priority class, DRR) order, moving
  /// expired/cancelled entries onto `dropped` instead of returning them.
  EntryPtr PopNextLocked(std::vector<std::pair<EntryPtr, Status>>* dropped)
      NIMBLE_REQUIRES(mutex_);
  /// Claims tokens and collects dispatchable entries; the caller fires the
  /// callbacks and pool submissions after unlocking.
  void DispatchLocked(std::vector<EntryPtr>* to_run,
                      std::vector<std::pair<EntryPtr, Status>>* dropped)
      NIMBLE_REQUIRES(mutex_);
  /// Executes one admitted entry on a pool worker and releases its tokens.
  void RunEntry(const EntryPtr& entry) NIMBLE_EXCLUDES(mutex_);
  bool CancelEntry(size_t id) NIMBLE_EXCLUDES(mutex_);

  const SchedulerOptions options_;
  Clock* const clock_;
  ThreadPool* const pool_;

  mutable Mutex mutex_{LockRank::kScheduler, "scheduler.queue"};
  CondVar drained_;  ///< signalled when inflight hits 0.
  /// Entry/Tenant/ClassQueue contents are reached only through the guarded
  /// containers below and are likewise protected by `mutex_`; an Entry's
  /// immutable fields (info, enqueue_micros, run/drop) transfer to the
  /// dispatching thread once claimed (DESIGN.md section 2e).
  bool stopping_ NIMBLE_GUARDED_BY(mutex_) = false;
  size_t next_id_ NIMBLE_GUARDED_BY(mutex_) = 1;
  /// Queued entries by id (for Cancel).
  std::map<size_t, EntryPtr> live_ NIMBLE_GUARDED_BY(mutex_);
  /// Strict priority: lowest class number first; DRR between tenants
  /// within a class.
  std::map<int, ClassQueue> classes_ NIMBLE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Tenant>> tenants_
      NIMBLE_GUARDED_BY(mutex_);
  size_t queue_depth_ NIMBLE_GUARDED_BY(mutex_) = 0;
  size_t inflight_queries_ NIMBLE_GUARDED_BY(mutex_) = 0;
  size_t inflight_bytes_ NIMBLE_GUARDED_BY(mutex_) = 0;
  /// EWMA of observed execution time, the queue-wait estimator's input.
  double avg_service_micros_ NIMBLE_GUARDED_BY(mutex_) = 0;
  /// Sliding window of recent queue waits for the percentile gauges.
  std::vector<int64_t> wait_window_ NIMBLE_GUARDED_BY(mutex_);
  size_t wait_window_next_ NIMBLE_GUARDED_BY(mutex_) = 0;

  uint64_t submitted_ NIMBLE_GUARDED_BY(mutex_) = 0;
  uint64_t admitted_ NIMBLE_GUARDED_BY(mutex_) = 0;
  uint64_t completed_ NIMBLE_GUARDED_BY(mutex_) = 0;
  uint64_t shed_queue_full_ NIMBLE_GUARDED_BY(mutex_) = 0;
  uint64_t shed_wait_deadline_ NIMBLE_GUARDED_BY(mutex_) = 0;
  uint64_t dropped_expired_ NIMBLE_GUARDED_BY(mutex_) = 0;
  uint64_t dropped_cancelled_ NIMBLE_GUARDED_BY(mutex_) = 0;
};

}  // namespace sched
}  // namespace nimble

#endif  // NIMBLE_SCHED_SCHEDULER_H_
