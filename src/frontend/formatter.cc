#include "frontend/formatter.h"

#include <algorithm>
#include <vector>

#include "common/strings.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace nimble {
namespace frontend {

namespace {

/// Extracts the tabular shape of a record document: the union of field
/// names (child-element names and attributes) across record children, in
/// first-appearance order, plus each record's field values.
struct Table {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

Table Tabulate(const Node& document) {
  Table table;
  auto column_index = [&table](const std::string& name) {
    for (size_t i = 0; i < table.columns.size(); ++i) {
      if (table.columns[i] == name) return i;
    }
    table.columns.push_back(name);
    return table.columns.size() - 1;
  };
  // First pass: establish columns.
  for (const NodePtr& record : document.children()) {
    if (!record->is_element()) continue;
    for (const auto& [attr_name, attr_value] : record->attributes()) {
      column_index(attr_name);
    }
    for (const NodePtr& field : record->children()) {
      if (field->is_element()) column_index(field->name());
    }
    // A record with pure scalar content (no element children) contributes
    // a column named after itself.
    if (record->children().size() == 1 && record->children()[0]->is_text()) {
      column_index(record->name());
    }
  }
  // Second pass: fill rows.
  for (const NodePtr& record : document.children()) {
    if (!record->is_element()) continue;
    std::vector<std::string> row(table.columns.size());
    for (const auto& [attr_name, attr_value] : record->attributes()) {
      row[column_index(attr_name)] = attr_value.ToString();
    }
    bool scalar_only = true;
    for (const NodePtr& field : record->children()) {
      if (field->is_element()) {
        row[column_index(field->name())] = field->ScalarValue().ToString();
        scalar_only = false;
      }
    }
    if (scalar_only && record->children().size() == 1 &&
        record->children()[0]->is_text()) {
      row[column_index(record->name())] = record->ScalarValue().ToString();
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

std::string EscapeCsvField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  return "\"" + ReplaceAll(field, "\"", "\"\"") + "\"";
}

}  // namespace

const char* TargetFormatName(TargetFormat format) {
  switch (format) {
    case TargetFormat::kXml:
      return "xml";
    case TargetFormat::kHtml:
      return "html";
    case TargetFormat::kText:
      return "text";
    case TargetFormat::kCsv:
      return "csv";
  }
  return "?";
}

std::string FormatResult(const Node& document, TargetFormat format) {
  if (format == TargetFormat::kXml) return ToPrettyXml(document);

  Table table = Tabulate(document);
  switch (format) {
    case TargetFormat::kHtml: {
      std::string out = "<table>\n  <tr>";
      for (const std::string& column : table.columns) {
        out += "<th>" + EscapeXmlText(column) + "</th>";
      }
      out += "</tr>\n";
      for (const auto& row : table.rows) {
        out += "  <tr>";
        for (const std::string& cell : row) {
          out += "<td>" + EscapeXmlText(cell) + "</td>";
        }
        out += "</tr>\n";
      }
      out += "</table>";
      return out;
    }
    case TargetFormat::kText: {
      // Column widths.
      std::vector<size_t> widths(table.columns.size());
      for (size_t c = 0; c < table.columns.size(); ++c) {
        widths[c] = table.columns[c].size();
        for (const auto& row : table.rows) {
          widths[c] = std::max(widths[c], row[c].size());
        }
      }
      auto pad = [](const std::string& s, size_t w) {
        return s + std::string(w - s.size(), ' ');
      };
      std::string out;
      for (size_t c = 0; c < table.columns.size(); ++c) {
        if (c > 0) out += "  ";
        out += pad(table.columns[c], widths[c]);
      }
      out += "\n";
      for (const auto& row : table.rows) {
        for (size_t c = 0; c < row.size(); ++c) {
          if (c > 0) out += "  ";
          out += pad(row[c], widths[c]);
        }
        out += "\n";
      }
      return out;
    }
    case TargetFormat::kCsv: {
      std::string out;
      for (size_t c = 0; c < table.columns.size(); ++c) {
        if (c > 0) out += ",";
        out += EscapeCsvField(table.columns[c]);
      }
      out += "\n";
      for (const auto& row : table.rows) {
        for (size_t c = 0; c < row.size(); ++c) {
          if (c > 0) out += ",";
          out += EscapeCsvField(row[c]);
        }
        out += "\n";
      }
      return out;
    }
    case TargetFormat::kXml:
      break;
  }
  return ToPrettyXml(document);
}

}  // namespace frontend
}  // namespace nimble
