#ifndef NIMBLE_FRONTEND_FORMATTER_H_
#define NIMBLE_FRONTEND_FORMATTER_H_

#include <string>

#include "xml/node.h"

namespace nimble {
namespace frontend {

/// Output targets for lens results (§2.1: "result formatting can be
/// targeted to specific devices (e.g., web interface, wireless device)").
enum class TargetFormat {
  kXml,   ///< raw pretty XML — the programmatic interface.
  kHtml,  ///< table for a web interface.
  kText,  ///< compact plain text for a constrained (wireless) device.
  kCsv,   ///< flat export for spreadsheets.
};

const char* TargetFormatName(TargetFormat format);

/// Formats a result document (a root whose children are record elements)
/// for a target device. Tabular targets build the column set as the union
/// of field names across records, in first-appearance order.
std::string FormatResult(const Node& document, TargetFormat format);

}  // namespace frontend
}  // namespace nimble

#endif  // NIMBLE_FRONTEND_FORMATTER_H_
