#ifndef NIMBLE_FRONTEND_AUTH_H_
#define NIMBLE_FRONTEND_AUTH_H_

#include <map>
#include <set>
#include <string>

#include "common/result.h"

namespace nimble {
namespace frontend {

/// Minimal token-based authentication/authorization for lenses (§2.1: a
/// lens carries "authentication information"). A principal holds a token
/// and a set of lens names it may invoke ("*" grants all).
class AuthRegistry {
 public:
  AuthRegistry() = default;

  /// Registers `token` for `principal` with access to `lenses`.
  void GrantAccess(const std::string& token, const std::string& principal,
                   std::set<std::string> lenses);

  /// Revokes a token entirely.
  void Revoke(const std::string& token);

  /// OK (with the principal name) when `token` may invoke `lens_name`;
  /// PermissionDenied otherwise.
  Result<std::string> Authorize(const std::string& token,
                                const std::string& lens_name) const;

 private:
  struct Grant {
    std::string principal;
    std::set<std::string> lenses;  ///< contains "*" for full access.
  };
  std::map<std::string, Grant> grants_;
};

}  // namespace frontend
}  // namespace nimble

#endif  // NIMBLE_FRONTEND_AUTH_H_
