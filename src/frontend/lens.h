#ifndef NIMBLE_FRONTEND_LENS_H_
#define NIMBLE_FRONTEND_LENS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "frontend/auth.h"
#include "frontend/formatter.h"
#include "frontend/load_balancer.h"
#include "materialize/result_cache.h"

namespace nimble {
namespace frontend {

/// A lens (§2.1): "an object that contains a set of XML queries,
/// parameters, XSL formatting, and authentication information". The query
/// text may contain `{param}` placeholders filled at invocation time;
/// formatting retargets the result per device.
struct Lens {
  std::string name;
  std::string query_template;
  std::map<std::string, std::string> default_parameters;
  TargetFormat format = TargetFormat::kXml;
  bool require_auth = false;
  bool cacheable = true;
  /// QoS identity forwarded to the engines' admission schedulers: the
  /// fair-share tenant bucket ("" = the lens name is NOT implied; default
  /// tenant) and the strict priority class of every query this lens issues.
  std::string tenant;
  int priority = 0;
};

/// A formatted lens answer.
struct LensResult {
  std::string body;  ///< formatted per the lens's target.
  core::QueryResult raw;
  bool served_from_cache = false;
};

/// Registry + invoker for lenses: binds the front end together —
/// authentication, parameter substitution, load-balanced execution,
/// result caching, and device formatting.
class LensService {
 public:
  /// `balancer` and `cache` must outlive the service; `cache` may be null
  /// (caching disabled). `auth` may be null (all lenses public).
  LensService(LoadBalancer* balancer, materialize::ResultCache* cache,
              AuthRegistry* auth)
      : balancer_(balancer), cache_(cache), auth_(auth) {}

  LensService(const LensService&) = delete;
  LensService& operator=(const LensService&) = delete;

  Status RegisterLens(Lens lens);
  const Lens* lens(const std::string& name) const;
  std::vector<std::string> LensNames() const;

  /// Invokes a lens. `parameters` override the lens defaults; every
  /// placeholder must end up bound. `token` is checked when the lens
  /// requires auth.
  Result<LensResult> Invoke(
      const std::string& lens_name,
      const std::map<std::string, std::string>& parameters = {},
      const std::string& token = "");

  /// Expands `{param}` placeholders; single quotes in values are doubled
  /// to keep them inert inside quoted XML-QL literals. Exposed for tests.
  static Result<std::string> ExpandTemplate(
      const std::string& query_template,
      const std::map<std::string, std::string>& parameters);

 private:
  LoadBalancer* balancer_;
  materialize::ResultCache* cache_;
  AuthRegistry* auth_;
  std::map<std::string, Lens> lenses_;
};

}  // namespace frontend
}  // namespace nimble

#endif  // NIMBLE_FRONTEND_LENS_H_
