#include "frontend/load_balancer.h"

#include <algorithm>
#include <functional>

namespace nimble {
namespace frontend {

void LoadBalancer::AddEngine(std::unique_ptr<core::IntegrationEngine> engine) {
  engines_.push_back(std::move(engine));
  busy_micros_.push_back(0);
}

size_t LoadBalancer::PickEngine() {
  MutexLock lock(mutex_);
  if (policy_ == BalancePolicy::kRoundRobin) {
    size_t pick = next_round_robin_;
    next_round_robin_ = (next_round_robin_ + 1) % engines_.size();
    return pick;
  }
  size_t best = 0;
  for (size_t i = 1; i < engines_.size(); ++i) {
    if (busy_micros_[i] < busy_micros_[best]) best = i;
  }
  return best;
}

Result<core::QueryResult> LoadBalancer::Execute(
    std::string_view xmlql_text, const core::QueryOptions& options) {
  if (engines_.empty()) {
    return Status::Internal("load balancer has no engine instances");
  }
  size_t pick = PickEngine();
  Result<core::QueryResult> result =
      engines_[pick]->ExecuteText(xmlql_text, options);
  if (result.ok()) {
    MutexLock lock(mutex_);
    busy_micros_[pick] += result->report.source_latency_micros;
  }
  return result;
}

std::vector<Result<core::QueryResult>> LoadBalancer::ExecuteBatch(
    const std::vector<std::string>& queries, const core::QueryOptions& options,
    ThreadPool* pool) {
  (void)pool;  // kept for API compatibility; see the header.
  std::vector<Result<core::QueryResult>> results(
      queries.size(), Result<core::QueryResult>(Status::Internal("not run")));
  if (engines_.empty()) {
    for (auto& slot : results) {
      slot = Status::Internal("load balancer has no engine instances");
    }
    return results;
  }
  // Submit-all then wait-all from this thread. Fanning the batch out over
  // pool workers that each block in ExecuteText would both bypass the
  // engines' admission limits and deadlock a scheduler whose dispatch
  // tasks share the pool those workers are sleeping on.
  std::vector<size_t> picks(queries.size());
  std::vector<core::QueryHandlePtr> handles;
  handles.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    picks[i] = PickEngine();
    handles.push_back(engines_[picks[i]]->Submit(queries[i], options));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    results[i] = handles[i]->Wait();
    if (results[i].ok()) {
      MutexLock lock(mutex_);
      busy_micros_[picks[i]] += results[i]->report.source_latency_micros;
      continue;
    }
    // Per-engine failure isolation: one overloaded or timed-out instance
    // must not poison its batch slots when the caller asked for partial
    // results. Degrade the slot to an empty partial answer — the same shape
    // the distributed coordinator's straggler path produces — and leave
    // hard errors (parse failures, internal faults) untouched.
    const StatusCode code = results[i].status().code();
    const bool degradable = code == StatusCode::kTimeout ||
                            code == StatusCode::kUnavailable ||
                            code == StatusCode::kResourceExhausted;
    const core::AvailabilityPolicy policy = options.availability.value_or(
        engines_[picks[i]]->options().availability);
    if (degradable && policy == core::AvailabilityPolicy::kPartial) {
      const std::string label = "engine#" + std::to_string(picks[i]);
      core::QueryResult partial;
      partial.document = Node::Element("results");
      partial.document->SetAttribute("complete", Value::Bool(false));
      partial.document->SetAttribute("missing_sources", Value::String(label));
      partial.report.completeness.complete = false;
      partial.report.completeness.unavailable_sources.push_back(label);
      results[i] = std::move(partial);
    }
  }
  return results;
}

std::vector<int64_t> LoadBalancer::BusyMicrosPerEngine() const {
  MutexLock lock(mutex_);
  return busy_micros_;
}

std::vector<uint64_t> LoadBalancer::QueriesPerEngine() const {
  std::vector<uint64_t> out;
  out.reserve(engines_.size());
  for (const auto& engine : engines_) out.push_back(engine->queries_served());
  return out;
}

int64_t LoadBalancer::MakespanMicros() const {
  MutexLock lock(mutex_);
  int64_t makespan = 0;
  for (int64_t busy : busy_micros_) makespan = std::max(makespan, busy);
  return makespan;
}

}  // namespace frontend
}  // namespace nimble
