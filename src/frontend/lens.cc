#include "frontend/lens.h"

#include "common/strings.h"

namespace nimble {
namespace frontend {

Status LensService::RegisterLens(Lens lens) {
  const std::string name = lens.name;
  if (name.empty()) return Status::InvalidArgument("lens needs a name");
  if (lenses_.count(name) > 0) {
    return Status::AlreadyExists("lens '" + name + "' already registered");
  }
  lenses_[name] = std::move(lens);
  return Status::OK();
}

const Lens* LensService::lens(const std::string& name) const {
  auto it = lenses_.find(name);
  return it == lenses_.end() ? nullptr : &it->second;
}

std::vector<std::string> LensService::LensNames() const {
  std::vector<std::string> names;
  names.reserve(lenses_.size());
  for (const auto& [name, lens] : lenses_) names.push_back(name);
  return names;
}

Result<std::string> LensService::ExpandTemplate(
    const std::string& query_template,
    const std::map<std::string, std::string>& parameters) {
  std::string out;
  out.reserve(query_template.size());
  size_t i = 0;
  while (i < query_template.size()) {
    char c = query_template[i];
    if (c != '{') {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t close = query_template.find('}', i);
    if (close == std::string::npos) {
      return Status::InvalidArgument("unterminated '{' in lens template");
    }
    std::string param = query_template.substr(i + 1, close - i - 1);
    auto it = parameters.find(param);
    if (it == parameters.end()) {
      return Status::InvalidArgument("lens parameter '" + param +
                                     "' not supplied");
    }
    // Keep injected values inert inside quoted literals.
    out += ReplaceAll(it->second, "'", "''");
    i = close + 1;
  }
  return out;
}

Result<LensResult> LensService::Invoke(
    const std::string& lens_name,
    const std::map<std::string, std::string>& parameters,
    const std::string& token) {
  const Lens* target = lens(lens_name);
  if (target == nullptr) {
    return Status::NotFound("no lens '" + lens_name + "'");
  }
  if (target->require_auth) {
    if (auth_ == nullptr) {
      return Status::PermissionDenied("lens '" + lens_name +
                                      "' requires auth but none configured");
    }
    NIMBLE_RETURN_IF_ERROR(auth_->Authorize(token, lens_name).status());
  }

  // Merge parameters over the defaults.
  std::map<std::string, std::string> merged = target->default_parameters;
  for (const auto& [key, value] : parameters) merged[key] = value;
  NIMBLE_ASSIGN_OR_RETURN(std::string query,
                          ExpandTemplate(target->query_template, merged));

  LensResult result;
  core::QueryOptions query_options;
  query_options.tenant = target->tenant;
  query_options.priority = target->priority;
  const std::string cache_key = "lens:" + lens_name + ":" + query;
  if (cache_ != nullptr && target->cacheable) {
    // Singleflight: concurrent identical invocations share one engine
    // execution. A hit (or a waiter) receives the shared frozen snapshot —
    // zero-copy; callers mutate via result.raw.MutableDocument().
    core::QueryResult executed;
    bool ran = false;
    Result<ConstNodePtr> snapshot = cache_->LookupOrCompute(
        cache_key,
        [&]() -> Result<materialize::ResultCache::Computed> {
          Result<core::QueryResult> raw =
              balancer_->Execute(query, query_options);
          if (!raw.ok()) return raw.status();
          executed = std::move(*raw);
          ran = true;
          materialize::ResultCache::Computed computed;
          computed.document = executed.document;
          // Only complete answers are cached: a partial result must not
          // mask the sources' recovery.
          computed.cacheable = executed.report.completeness.complete;
          computed.tags = executed.report.sources_contacted;
          return computed;
        });
    NIMBLE_RETURN_IF_ERROR(snapshot.status());
    if (ran) {
      result.raw = std::move(executed);
      // nimble-lint: frozen(zero-copy cache seam; callers mutate via QueryResult::MutableDocument which clones)
      result.raw.document = std::const_pointer_cast<Node>(*snapshot);
    } else {
      // nimble-lint: frozen(zero-copy cache seam; callers mutate via QueryResult::MutableDocument which clones)
      result.raw.document = std::const_pointer_cast<Node>(*snapshot);
      result.raw.report.result_count = result.raw.document->children().size();
      result.raw.report.served_from_cache = true;
      result.served_from_cache = true;
    }
    result.body = FormatResult(*result.raw.document, target->format);
    return result;
  }

  NIMBLE_ASSIGN_OR_RETURN(result.raw,
                          balancer_->Execute(query, query_options));
  result.body = FormatResult(*result.raw.document, target->format);
  return result;
}

}  // namespace frontend
}  // namespace nimble
