#include "frontend/auth.h"

namespace nimble {
namespace frontend {

void AuthRegistry::GrantAccess(const std::string& token,
                               const std::string& principal,
                               std::set<std::string> lenses) {
  grants_[token] = Grant{principal, std::move(lenses)};
}

void AuthRegistry::Revoke(const std::string& token) { grants_.erase(token); }

Result<std::string> AuthRegistry::Authorize(
    const std::string& token, const std::string& lens_name) const {
  auto it = grants_.find(token);
  if (it == grants_.end()) {
    return Status::PermissionDenied("unknown token");
  }
  const Grant& grant = it->second;
  if (grant.lenses.count("*") == 0 && grant.lenses.count(lens_name) == 0) {
    return Status::PermissionDenied("principal '" + grant.principal +
                                    "' may not invoke lens '" + lens_name +
                                    "'");
  }
  return grant.principal;
}

}  // namespace frontend
}  // namespace nimble
