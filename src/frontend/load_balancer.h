#ifndef NIMBLE_FRONTEND_LOAD_BALANCER_H_
#define NIMBLE_FRONTEND_LOAD_BALANCER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/engine.h"

namespace nimble {
namespace frontend {

/// How queries are spread over engine instances.
enum class BalancePolicy {
  kRoundRobin,
  kLeastLoaded,  ///< least cumulative simulated busy-time.
};

/// Dispatches queries over a pool of integration-engine instances (§2.1:
/// "load balancing is provided; multiple instances of the integration
/// engine can be run simultaneously on one or more servers"). Engines
/// share the catalog; the balancer tracks per-instance load so E6 can
/// measure scaling and policy quality.
///
/// Execute/ExecuteBatch are safe to call from many threads at once;
/// AddEngine/set_policy are not — configure the pool before serving.
class LoadBalancer {
 public:
  explicit LoadBalancer(BalancePolicy policy = BalancePolicy::kRoundRobin)
      : policy_(policy) {}

  LoadBalancer(const LoadBalancer&) = delete;
  LoadBalancer& operator=(const LoadBalancer&) = delete;

  /// Adds an engine instance to the pool (owned).
  void AddEngine(std::unique_ptr<core::IntegrationEngine> engine);

  size_t pool_size() const { return engines_.size(); }
  BalancePolicy policy() const { return policy_; }
  void set_policy(BalancePolicy policy) { policy_ = policy; }

  /// Executes XML-QL text on the chosen instance.
  Result<core::QueryResult> Execute(std::string_view xmlql_text,
                                    const core::QueryOptions& options = {});

  /// Serves a batch of queries concurrently, each dispatched through the
  /// balancing policy and submitted to its engine's admission scheduler
  /// (when configured), so batch traffic respects the same in-flight limits
  /// and shedding as single submits instead of bypassing them. Results line
  /// up with `queries` by index. `pool` is accepted for compatibility but
  /// unused: concurrency comes from Engine::Submit, never from blocking
  /// extra workers on a batch.
  std::vector<Result<core::QueryResult>> ExecuteBatch(
      const std::vector<std::string>& queries,
      const core::QueryOptions& options = {}, ThreadPool* pool = nullptr);

  /// Instance `i` of the pool (for the SystemMonitor's per-engine
  /// scheduler gauges).
  core::IntegrationEngine* engine(size_t i) { return engines_[i].get(); }

  /// Per-instance cumulative busy time (source latency charged to the
  /// instance that served each query) — the load distribution evidence.
  std::vector<int64_t> BusyMicrosPerEngine() const;
  std::vector<uint64_t> QueriesPerEngine() const;

  /// Makespan under the recorded assignment: the busiest instance's total.
  int64_t MakespanMicros() const;

 private:
  size_t PickEngine() NIMBLE_EXCLUDES(mutex_);

  /// `policy_` and `engines_` are configure-before-serve (see the class
  /// contract): AddEngine/set_policy run before queries flow, so they stay
  /// unguarded by design (DESIGN.md section 2e).
  // nimble-lint: unguarded(configure-before-serve: set_policy runs before queries flow)
  BalancePolicy policy_;
  // nimble-lint: unguarded(configure-before-serve: AddEngine runs before queries flow)
  std::vector<std::unique_ptr<core::IntegrationEngine>> engines_;
  mutable Mutex mutex_{LockRank::kLoadBalancer, "load_balancer.dispatch"};
  std::vector<int64_t> busy_micros_ NIMBLE_GUARDED_BY(mutex_);
  size_t next_round_robin_ NIMBLE_GUARDED_BY(mutex_) = 0;
};

}  // namespace frontend
}  // namespace nimble

#endif  // NIMBLE_FRONTEND_LOAD_BALANCER_H_
