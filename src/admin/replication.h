#ifndef NIMBLE_ADMIN_REPLICATION_H_
#define NIMBLE_ADMIN_REPLICATION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cleaning/flow.h"
#include "common/result.h"
#include "core/engine.h"
#include "metadata/catalog.h"
#include "relational/database.h"

namespace nimble {
namespace admin {

/// What one replication run did.
struct ReplicationRunStats {
  size_t rows_loaded = 0;
  size_t rows_before_cleaning = 0;
  size_t values_normalized = 0;
  uint64_t source_version = 0;
};

/// Offline replication (paper §2.1: "our main architecture is built on a
/// federated integration model, [but] we support a compound architecture
/// that includes offline data manipulation and replication as well, using
/// our data administrator sub-system").
///
/// A ReplicationJob copies a source collection or a mediated view's result
/// into a local relational table, optionally pushing the records through a
/// cleaning flow on the way (the warehouse-style ETL path, in contrast to
/// the dynamic cleaning of §3.2). The target schema is inferred from the
/// records: the union of field names, with the dominant scalar type per
/// field.
class ReplicationJob {
 public:
  /// Replicates `source:collection` (or a view when `source` is empty)
  /// into `target_table` of `target`. All pointers must outlive the job.
  ReplicationJob(metadata::Catalog* catalog, core::IntegrationEngine* engine,
                 relational::Database* target, std::string target_table,
                 xmlql::SourceRef what)
      : catalog_(catalog),
        engine_(engine),
        target_(target),
        target_table_(std::move(target_table)),
        what_(std::move(what)) {}

  /// Attaches a cleaning flow applied to every batch before loading.
  void SetCleaningFlow(std::shared_ptr<cleaning::CleaningFlow> flow) {
    flow_ = std::move(flow);
  }

  /// Runs the job: fetches, optionally cleans, (re)creates the target
  /// table, loads. Idempotent — each run fully replaces the replica.
  Result<ReplicationRunStats> Run();

  /// True when the origin changed since the last successful run.
  Result<bool> OriginChanged() const;

  const std::string& target_table() const { return target_table_; }
  const xmlql::SourceRef& origin() const { return what_; }
  std::optional<uint64_t> last_loaded_version() const {
    return last_loaded_version_;
  }

 private:
  Result<std::vector<cleaning::KeyedRecord>> FetchRecords(
      uint64_t* version) const;

  metadata::Catalog* catalog_;
  core::IntegrationEngine* engine_;
  relational::Database* target_;
  std::string target_table_;
  xmlql::SourceRef what_;
  std::shared_ptr<cleaning::CleaningFlow> flow_;
  std::optional<uint64_t> last_loaded_version_;
};

/// Infers a relational schema from a record batch: union of field names
/// (sorted), column type = the single scalar type seen, widened to string
/// on conflict (int+double widen to double). Exposed for tests.
relational::TableSchema InferSchema(
    const std::string& table_name,
    const std::vector<cleaning::KeyedRecord>& records);

}  // namespace admin
}  // namespace nimble

#endif  // NIMBLE_ADMIN_REPLICATION_H_
