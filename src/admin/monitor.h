#ifndef NIMBLE_ADMIN_MONITOR_H_
#define NIMBLE_ADMIN_MONITOR_H_

#include <string>

#include "dist/coordinator.h"
#include "frontend/load_balancer.h"
#include "materialize/result_cache.h"
#include "materialize/view_store.h"
#include "metadata/catalog.h"

namespace nimble {
namespace admin {

/// Management/monitoring surface (paper §4: "configuration and management
/// tools that make it possible for administrators to set up, monitor, and
/// understand, the system"; §2.1: "robust system management").
///
/// Composes the live components and renders a status document: sources
/// (liveness, capabilities, transfer stats), mediated views and their
/// dependencies, materializations (age/staleness), cache and engine-pool
/// statistics. The XML form is machine-readable (it round-trips through
/// the normal serializer); ToText() renders it for a terminal.
class SystemMonitor {
 public:
  /// Only `catalog` is required; the others may be null. When `coordinator`
  /// is set, the status document gains a `<distribution>` section: scatter
  /// fan-out / merge-row / straggler / partial-result counters, per-shard
  /// scheduler queue depth, and the registered fragment maps.
  explicit SystemMonitor(metadata::Catalog* catalog,
                         materialize::MaterializedViewStore* views = nullptr,
                         materialize::ResultCache* cache = nullptr,
                         frontend::LoadBalancer* balancer = nullptr,
                         dist::Coordinator* coordinator = nullptr)
      : catalog_(catalog),
        views_(views),
        cache_(cache),
        balancer_(balancer),
        coordinator_(coordinator) {}

  /// Snapshot of the whole system as an XML document rooted at
  /// `<system_status>`. Pings every source (cheap liveness probe).
  NodePtr StatusDocument() const;

  /// Terminal rendering of StatusDocument().
  std::string ToText() const;

 private:
  metadata::Catalog* catalog_;
  materialize::MaterializedViewStore* views_;
  materialize::ResultCache* cache_;
  frontend::LoadBalancer* balancer_;
  dist::Coordinator* coordinator_;
};

}  // namespace admin
}  // namespace nimble

#endif  // NIMBLE_ADMIN_MONITOR_H_
