#include "admin/replication.h"

#include <map>

#include "xmlql/parser.h"

namespace nimble {
namespace admin {

relational::TableSchema InferSchema(
    const std::string& table_name,
    const std::vector<cleaning::KeyedRecord>& records) {
  // Field → observed type (null until seen; widened on conflict).
  std::map<std::string, std::optional<ValueType>> observed;
  for (const cleaning::KeyedRecord& record : records) {
    for (const auto& [field, value] : record.fields) {
      if (value.is_null()) {
        observed.try_emplace(field, std::nullopt);
        continue;
      }
      auto [it, inserted] = observed.try_emplace(field, value.type());
      if (inserted || !it->second.has_value()) {
        it->second = value.type();
        continue;
      }
      ValueType seen = *it->second;
      ValueType now = value.type();
      if (seen == now) continue;
      bool numeric_pair =
          (seen == ValueType::kInt || seen == ValueType::kDouble) &&
          (now == ValueType::kInt || now == ValueType::kDouble);
      it->second = numeric_pair ? ValueType::kDouble : ValueType::kString;
    }
  }
  std::vector<relational::Column> columns;
  for (const auto& [field, type] : observed) {
    relational::Column col;
    col.name = field;
    col.type = type.value_or(ValueType::kString);
    col.nullable = true;
    columns.push_back(std::move(col));
  }
  return relational::TableSchema(table_name, std::move(columns));
}

Result<std::vector<cleaning::KeyedRecord>> ReplicationJob::FetchRecords(
    uint64_t* version) const {
  NodePtr tree;
  if (what_.is_view()) {
    const metadata::MediatedView* view = catalog_->view(what_.collection);
    if (view == nullptr) {
      return Status::NotFound("no view '" + what_.collection + "'");
    }
    NIMBLE_ASSIGN_OR_RETURN(core::QueryResult result,
                            engine_->ExecuteText(view->query_text));
    tree = result.document;
    *version = 0;
    for (const std::string& src : view->source_dependencies) {
      connector::Connector* source = catalog_->source(src);
      if (source != nullptr) *version += source->DataVersion();
    }
  } else {
    connector::Connector* source = catalog_->source(what_.source);
    if (source == nullptr) {
      return Status::NotFound("no source '" + what_.source + "'");
    }
    NIMBLE_ASSIGN_OR_RETURN(tree, source->FetchCollection(what_.collection));
    *version = source->DataVersion();
  }
  std::vector<cleaning::KeyedRecord> records;
  size_t index = 0;
  for (const NodePtr& child : tree->children()) {
    if (!child->is_element()) continue;
    cleaning::KeyedRecord record;
    record.id = what_.ToString() + "#" + std::to_string(index++);
    record.fields = cleaning::RecordFromXml(*child);
    if (!record.fields.empty()) records.push_back(std::move(record));
  }
  return records;
}

Result<ReplicationRunStats> ReplicationJob::Run() {
  ReplicationRunStats stats;
  uint64_t version = 0;
  NIMBLE_ASSIGN_OR_RETURN(std::vector<cleaning::KeyedRecord> records,
                          FetchRecords(&version));
  stats.rows_before_cleaning = records.size();
  stats.source_version = version;

  if (flow_ != nullptr) {
    NIMBLE_ASSIGN_OR_RETURN(cleaning::FlowOutput cleaned,
                            flow_->Run(std::move(records)));
    records = std::move(cleaned.records);
    stats.values_normalized = cleaned.values_normalized;
  }

  // Full-replace semantics: drop and recreate the replica table.
  relational::TableSchema schema = InferSchema(target_table_, records);
  if (target_->GetTable(target_table_) != nullptr) {
    // No DROP TABLE in the SQL subset; emulate by deleting all rows when
    // the schema is unchanged, else fail loudly.
    relational::Table* existing = target_->GetTable(target_table_);
    bool same_schema =
        existing->schema().num_columns() == schema.num_columns();
    if (same_schema) {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        if (existing->schema().columns()[c].name !=
                schema.columns()[c].name ||
            existing->schema().columns()[c].type !=
                schema.columns()[c].type) {
          same_schema = false;
          break;
        }
      }
    }
    if (!same_schema) {
      return Status::InvalidArgument(
          "replica table '" + target_table_ +
          "' exists with a different schema; drop it first");
    }
    existing->DeleteWhere([](const relational::Row&) { return true; });
    for (const cleaning::KeyedRecord& record : records) {
      relational::Row row;
      for (const relational::Column& col : schema.columns()) {
        auto it = record.fields.find(col.name);
        row.push_back(it == record.fields.end() ? Value::Null() : it->second);
      }
      NIMBLE_RETURN_IF_ERROR(existing->Insert(std::move(row)));
      ++stats.rows_loaded;
    }
  } else {
    NIMBLE_ASSIGN_OR_RETURN(relational::Table * table,
                            target_->CreateTable(schema));
    for (const cleaning::KeyedRecord& record : records) {
      relational::Row row;
      for (const relational::Column& col : schema.columns()) {
        auto it = record.fields.find(col.name);
        row.push_back(it == record.fields.end() ? Value::Null() : it->second);
      }
      NIMBLE_RETURN_IF_ERROR(table->Insert(std::move(row)));
      ++stats.rows_loaded;
    }
  }
  last_loaded_version_ = version;
  return stats;
}

Result<bool> ReplicationJob::OriginChanged() const {
  if (!last_loaded_version_.has_value()) return true;
  uint64_t version = 0;
  if (what_.is_view()) {
    const metadata::MediatedView* view = catalog_->view(what_.collection);
    if (view == nullptr) {
      return Status::NotFound("no view '" + what_.collection + "'");
    }
    for (const std::string& src : view->source_dependencies) {
      connector::Connector* source = catalog_->source(src);
      if (source != nullptr) version += source->DataVersion();
    }
  } else {
    connector::Connector* source = catalog_->source(what_.source);
    if (source == nullptr) {
      return Status::NotFound("no source '" + what_.source + "'");
    }
    version = source->DataVersion();
  }
  return version != *last_loaded_version_;
}

}  // namespace admin
}  // namespace nimble
