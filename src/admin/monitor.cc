#include "admin/monitor.h"

#include "common/strings.h"

namespace nimble {
namespace admin {

NodePtr SystemMonitor::StatusDocument() const {
  NodePtr root = Node::Element("system_status");

  NodePtr sources = root->AddChild(Node::Element("sources"));
  for (const std::string& name : catalog_->SourceNames()) {
    connector::Connector* source = catalog_->source(name);
    NodePtr elem = sources->AddChild(Node::Element("source"));
    elem->SetAttribute("name", Value::String(name));
    elem->SetAttribute("online", Value::Bool(source->Ping().ok()));
    connector::SourceCapabilities caps = source->capabilities();
    elem->AddScalarChild("sql", Value::Bool(caps.supports_sql));
    elem->AddScalarChild("predicates", Value::Bool(caps.supports_predicates));
    elem->AddScalarChild(
        "indexes", Value::Int(static_cast<int64_t>(caps.indexed_columns.size())));
    elem->AddScalarChild("data_version",
                         Value::Int(static_cast<int64_t>(source->DataVersion())));
    connector::FetchStats stats = source->stats();
    elem->AddScalarChild("calls", Value::Int(static_cast<int64_t>(stats.calls)));
    elem->AddScalarChild("rows_shipped",
                         Value::Int(static_cast<int64_t>(stats.rows_shipped)));
    elem->AddScalarChild("latency_ms",
                         Value::Double(stats.latency_micros / 1000.0));
    std::vector<std::string> collections = source->Collections();
    elem->AddScalarChild("collections",
                         Value::String(Join(collections, ",")));
  }

  NodePtr views = root->AddChild(Node::Element("views"));
  for (const std::string& name : catalog_->ViewNames()) {
    const metadata::MediatedView* view = catalog_->view(name);
    NodePtr elem = views->AddChild(Node::Element("view"));
    elem->SetAttribute("name", Value::String(name));
    elem->AddScalarChild("sources",
                         Value::String(Join(view->source_dependencies, ",")));
    if (!view->view_dependencies.empty()) {
      elem->AddScalarChild("depends_on",
                           Value::String(Join(view->view_dependencies, ",")));
    }
    if (!view->description.empty()) {
      elem->AddScalarChild("description", Value::String(view->description));
    }
    if (views_ != nullptr) {
      bool materialized = views_->IsMaterialized(name);
      elem->AddScalarChild("materialized", Value::Bool(materialized));
      if (materialized) {
        elem->AddScalarChild("stale",
                             Value::Bool(views_->IsStale(name).ValueOr(false)));
        elem->AddScalarChild(
            "age_ms", Value::Double(views_->AgeMicros(name).ValueOr(0) / 1000.0));
      }
    }
  }

  if (views_ != nullptr) {
    NodePtr store = root->AddChild(Node::Element("view_store"));
    store->AddScalarChild(
        "serves", Value::Int(static_cast<int64_t>(views_->stats().serves)));
    store->AddScalarChild(
        "refreshes",
        Value::Int(static_cast<int64_t>(views_->stats().refreshes)));
    store->AddScalarChild(
        "storage_nodes",
        Value::Int(static_cast<int64_t>(views_->StorageCost())));
  }

  if (cache_ != nullptr) {
    materialize::CacheStats stats = cache_->stats();
    NodePtr cache = root->AddChild(Node::Element("result_cache"));
    cache->AddScalarChild("entries",
                          Value::Int(static_cast<int64_t>(stats.entries)));
    cache->AddScalarChild("bytes",
                          Value::Int(static_cast<int64_t>(stats.bytes)));
    cache->AddScalarChild(
        "max_bytes", Value::Int(static_cast<int64_t>(cache_->max_bytes())));
    cache->AddScalarChild("hit_rate", Value::Double(stats.HitRate()));
    cache->AddScalarChild("coalesced",
                          Value::Int(static_cast<int64_t>(stats.coalesced)));
    cache->AddScalarChild("evictions",
                          Value::Int(static_cast<int64_t>(stats.evictions)));
    cache->AddScalarChild(
        "expirations", Value::Int(static_cast<int64_t>(stats.expirations)));
    cache->AddScalarChild(
        "invalidations",
        Value::Int(static_cast<int64_t>(stats.invalidations)));
  }

  if (balancer_ != nullptr) {
    NodePtr pool = root->AddChild(Node::Element("engine_pool"));
    pool->SetAttribute("size",
                       Value::Int(static_cast<int64_t>(balancer_->pool_size())));
    std::vector<uint64_t> served = balancer_->QueriesPerEngine();
    std::vector<int64_t> busy = balancer_->BusyMicrosPerEngine();
    for (size_t i = 0; i < served.size(); ++i) {
      NodePtr engine = pool->AddChild(Node::Element("engine"));
      engine->SetAttribute("index", Value::Int(static_cast<int64_t>(i)));
      engine->AddScalarChild("queries",
                             Value::Int(static_cast<int64_t>(served[i])));
      engine->AddScalarChild("busy_ms", Value::Double(busy[i] / 1000.0));
      sched::QueryScheduler* scheduler = balancer_->engine(i)->scheduler();
      if (scheduler == nullptr) continue;
      sched::SchedulerStats stats = scheduler->stats();
      NodePtr sched = engine->AddChild(Node::Element("scheduler"));
      sched->AddScalarChild("queue_depth",
                            Value::Int(static_cast<int64_t>(stats.queue_depth)));
      sched->AddScalarChild(
          "inflight", Value::Int(static_cast<int64_t>(stats.inflight_queries)));
      sched->AddScalarChild(
          "inflight_bytes",
          Value::Int(static_cast<int64_t>(stats.inflight_bytes)));
      sched->AddScalarChild(
          "admitted", Value::Int(static_cast<int64_t>(stats.admitted)));
      sched->AddScalarChild(
          "completed", Value::Int(static_cast<int64_t>(stats.completed)));
      sched->AddScalarChild("shed",
                            Value::Int(static_cast<int64_t>(stats.TotalShed())));
      sched->AddScalarChild(
          "dropped_expired",
          Value::Int(static_cast<int64_t>(stats.dropped_expired)));
      sched->AddScalarChild(
          "dropped_cancelled",
          Value::Int(static_cast<int64_t>(stats.dropped_cancelled)));
      sched->AddScalarChild("queue_wait_p50_ms",
                            Value::Double(stats.queue_wait_p50_micros / 1000.0));
      sched->AddScalarChild("queue_wait_p90_ms",
                            Value::Double(stats.queue_wait_p90_micros / 1000.0));
      sched->AddScalarChild("queue_wait_p99_ms",
                            Value::Double(stats.queue_wait_p99_micros / 1000.0));
      for (const sched::TenantStats& ts : stats.tenants) {
        NodePtr tenant = sched->AddChild(Node::Element("tenant"));
        tenant->SetAttribute("name", Value::String(ts.tenant.empty()
                                                       ? "<default>"
                                                       : ts.tenant));
        tenant->SetAttribute("weight",
                             Value::Int(static_cast<int64_t>(ts.weight)));
        tenant->AddScalarChild(
            "submitted", Value::Int(static_cast<int64_t>(ts.submitted)));
        tenant->AddScalarChild("admitted",
                               Value::Int(static_cast<int64_t>(ts.admitted)));
        // Admit rate: share of this tenant's submissions that reached a
        // worker (the rest were shed or dropped while queued).
        tenant->AddScalarChild(
            "admit_rate",
            Value::Double(ts.submitted == 0
                              ? 1.0
                              : static_cast<double>(ts.admitted) /
                                    static_cast<double>(ts.submitted)));
        tenant->AddScalarChild("completed",
                               Value::Int(static_cast<int64_t>(ts.completed)));
        tenant->AddScalarChild("shed",
                               Value::Int(static_cast<int64_t>(ts.shed)));
        tenant->AddScalarChild("dropped",
                               Value::Int(static_cast<int64_t>(ts.dropped)));
        tenant->AddScalarChild("queued",
                               Value::Int(static_cast<int64_t>(ts.queued)));
      }
    }
  }
  if (coordinator_ != nullptr) {
    dist::ShardCluster* cluster = coordinator_->cluster();
    dist::CoordinatorCounters counters = coordinator_->counters();
    NodePtr distribution = root->AddChild(Node::Element("distribution"));
    distribution->SetAttribute(
        "shards", Value::Int(static_cast<int64_t>(cluster->num_shards())));
    distribution->AddScalarChild(
        "scatter_queries",
        Value::Int(static_cast<int64_t>(counters.scatter_queries)));
    distribution->AddScalarChild(
        "fallback_queries",
        Value::Int(static_cast<int64_t>(counters.fallback_queries)));
    distribution->AddScalarChild(
        "scatter_subqueries",
        Value::Int(static_cast<int64_t>(counters.subqueries)));
    distribution->AddScalarChild(
        "shards_pruned",
        Value::Int(static_cast<int64_t>(counters.shards_pruned)));
    distribution->AddScalarChild(
        "merge_rows", Value::Int(static_cast<int64_t>(counters.merge_rows)));
    distribution->AddScalarChild(
        "stragglers", Value::Int(static_cast<int64_t>(counters.stragglers)));
    distribution->AddScalarChild(
        "partial_results",
        Value::Int(static_cast<int64_t>(counters.partial_results)));
    distribution->AddScalarChild(
        "repartitions",
        Value::Int(static_cast<int64_t>(cluster->repartitions())));
    for (size_t i = 0; i < cluster->num_shards(); ++i) {
      NodePtr shard = distribution->AddChild(Node::Element("shard"));
      shard->SetAttribute("index", Value::Int(static_cast<int64_t>(i)));
      core::IntegrationEngine* engine = cluster->shard_engine(i);
      shard->AddScalarChild(
          "queries",
          Value::Int(static_cast<int64_t>(engine->queries_served())));
      sched::QueryScheduler* scheduler = engine->scheduler();
      if (scheduler != nullptr) {
        sched::SchedulerStats stats = scheduler->stats();
        shard->AddScalarChild(
            "queue_depth",
            Value::Int(static_cast<int64_t>(stats.queue_depth)));
        shard->AddScalarChild(
            "inflight",
            Value::Int(static_cast<int64_t>(stats.inflight_queries)));
      }
    }
    for (const metadata::FragmentMap* map :
         cluster->catalog()->FragmentMaps()) {
      NodePtr fragment_map =
          distribution->AddChild(Node::Element("fragment_map"));
      fragment_map->SetAttribute("source", Value::String(map->source));
      fragment_map->SetAttribute("collection", Value::String(map->collection));
      fragment_map->AddScalarChild("key", Value::String(map->partition_key));
      fragment_map->AddScalarChild(
          "kind",
          Value::String(metadata::FragmentMap::KindName(map->kind)));
      std::vector<size_t> rows =
          cluster->registry().FragmentRowCounts(map->source, map->collection);
      std::vector<std::string> row_text;
      row_text.reserve(rows.size());
      for (size_t n : rows) row_text.push_back(std::to_string(n));
      fragment_map->AddScalarChild("fragment_rows",
                                   Value::String(Join(row_text, ",")));
    }
  }
  return root;
}

namespace {

void RenderText(const Node& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.name());
  for (const auto& [name, value] : node.attributes()) {
    out->append(" " + name + "=" + value.ToString());
  }
  // Simple-content children render inline as key: value.
  bool has_nested = false;
  std::string inline_fields;
  for (const NodePtr& child : node.children()) {
    if (!child->is_element()) continue;
    if (child->children().size() == 1 && child->children()[0]->is_text()) {
      inline_fields +=
          "  " + child->name() + ": " + child->ScalarValue().ToString();
    } else {
      has_nested = true;
    }
  }
  out->append(inline_fields);
  out->push_back('\n');
  if (has_nested || !node.children().empty()) {
    for (const NodePtr& child : node.children()) {
      if (!child->is_element()) continue;
      if (child->children().size() == 1 && child->children()[0]->is_text()) {
        continue;  // already inlined
      }
      RenderText(*child, depth + 1, out);
    }
  }
}

}  // namespace

std::string SystemMonitor::ToText() const {
  NodePtr doc = StatusDocument();
  std::string out;
  RenderText(*doc, 0, &out);
  return out;
}

}  // namespace admin
}  // namespace nimble
