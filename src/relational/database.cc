#include "relational/database.h"

#include "relational/sql_parser.h"

namespace nimble {
namespace relational {

Result<Table*> Database::CreateTable(TableSchema schema) {
  const std::string table_name = schema.name();
  if (tables_.count(table_name) > 0) {
    return Status::AlreadyExists("table '" + table_name + "' already exists");
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table* ptr = table.get();
  tables_[table_name] = std::move(table);
  return ptr;
}

Table* Database::GetTable(const std::string& table_name) {
  auto it = tables_.find(table_name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& table_name) const {
  auto it = tables_.find(table_name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Result<ResultSet> Database::Query(const SelectStmt& stmt) const {
  return ExecuteSelect(*this, stmt);
}

Result<ResultSet> Database::Execute(std::string_view sql) {
  NIMBLE_ASSIGN_OR_RETURN(SqlStatement stmt, ParseSql(sql));

  if (auto* select = std::get_if<SelectStmt>(&stmt)) {
    return Query(*select);
  }

  if (auto* insert = std::get_if<InsertStmt>(&stmt)) {
    Table* table = GetTable(insert->table);
    if (table == nullptr) {
      return Status::NotFound("no table '" + insert->table + "'");
    }
    const TableSchema& schema = table->schema();
    for (const std::vector<Value>& values : insert->rows) {
      Row row;
      if (insert->columns.empty()) {
        row = values;
      } else {
        if (values.size() != insert->columns.size()) {
          return Status::InvalidArgument("VALUES arity mismatch");
        }
        row.assign(schema.num_columns(), Value::Null());
        for (size_t i = 0; i < insert->columns.size(); ++i) {
          std::optional<size_t> col = schema.ColumnIndex(insert->columns[i]);
          if (!col.has_value()) {
            return Status::NotFound("no column '" + insert->columns[i] +
                                    "' in table '" + insert->table + "'");
          }
          row[*col] = values[i];
        }
      }
      NIMBLE_RETURN_IF_ERROR(table->Insert(std::move(row)));
    }
    ResultSet rs;
    rs.stats.rows_returned = insert->rows.size();
    return rs;
  }

  if (auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    TableSchema schema(create->table, create->columns);
    if (!create->primary_key.empty()) {
      NIMBLE_RETURN_IF_ERROR(schema.SetPrimaryKey(create->primary_key));
    }
    NIMBLE_ASSIGN_OR_RETURN(Table * table, CreateTable(std::move(schema)));
    // A primary key implies an index (used for uniqueness checks and probes).
    if (!create->primary_key.empty()) {
      NIMBLE_RETURN_IF_ERROR(
          table->CreateIndex("pk_" + create->table, create->primary_key));
    }
    return ResultSet{};
  }

  if (auto* create_index = std::get_if<CreateIndexStmt>(&stmt)) {
    Table* table = GetTable(create_index->table);
    if (table == nullptr) {
      return Status::NotFound("no table '" + create_index->table + "'");
    }
    NIMBLE_RETURN_IF_ERROR(
        table->CreateIndex(create_index->index_name, create_index->column));
    return ResultSet{};
  }

  if (auto* del = std::get_if<DeleteStmt>(&stmt)) {
    Table* table = GetTable(del->table);
    if (table == nullptr) {
      return Status::NotFound("no table '" + del->table + "'");
    }
    Status eval_error = Status::OK();
    size_t removed = table->DeleteWhere([&](const Row& row) {
      if (del->where == nullptr) return true;
      Result<Value> v =
          EvaluateRowExpression(*del->where, table->schema(), row);
      if (!v.ok()) {
        eval_error = v.status();
        return false;
      }
      return v->Truthy();
    });
    NIMBLE_RETURN_IF_ERROR(eval_error);
    ResultSet rs;
    rs.stats.rows_returned = removed;
    return rs;
  }

  if (auto* update = std::get_if<UpdateStmt>(&stmt)) {
    Table* table = GetTable(update->table);
    if (table == nullptr) {
      return Status::NotFound("no table '" + update->table + "'");
    }
    const TableSchema& schema = table->schema();
    std::vector<size_t> target_cols;
    for (const auto& [col, expr] : update->assignments) {
      std::optional<size_t> idx = schema.ColumnIndex(col);
      if (!idx.has_value()) {
        return Status::NotFound("no column '" + col + "' in table '" +
                                update->table + "'");
      }
      target_cols.push_back(*idx);
    }
    Status eval_error = Status::OK();
    NIMBLE_ASSIGN_OR_RETURN(
        size_t updated,
        table->UpdateWhere(
            [&](const Row& row) {
              if (update->where == nullptr) return true;
              Result<Value> v =
                  EvaluateRowExpression(*update->where, schema, row);
              if (!v.ok()) {
                eval_error = v.status();
                return false;
              }
              return v->Truthy();
            },
            [&](Row* row) {
              // Assignments see the *old* row values.
              const Row old_row = *row;
              for (size_t a = 0; a < update->assignments.size(); ++a) {
                Result<Value> v = EvaluateRowExpression(
                    *update->assignments[a].second, schema, old_row);
                if (!v.ok()) {
                  eval_error = v.status();
                  return;
                }
                (*row)[target_cols[a]] = std::move(v).value();
              }
            }));
    NIMBLE_RETURN_IF_ERROR(eval_error);
    ResultSet rs;
    rs.stats.rows_returned = updated;
    return rs;
  }

  return Status::Internal("unhandled statement variant");
}

uint64_t Database::Version() const {
  uint64_t v = 0;
  for (const auto& [name, table] : tables_) v += table->version();
  return v;
}

}  // namespace relational
}  // namespace nimble
