#ifndef NIMBLE_RELATIONAL_SQL_LEXER_H_
#define NIMBLE_RELATIONAL_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace nimble {
namespace relational {

/// SQL token kinds.
enum class SqlTokenKind {
  kKeyword,     ///< upper-cased reserved word (SELECT, FROM, …).
  kIdentifier,  ///< table/column/alias name (case preserved).
  kInteger,
  kFloat,
  kString,      ///< single-quoted, quotes stripped, '' unescaped.
  kOperator,    ///< punctuation: = != <> < <= > >= + - * / % ( ) , .
  kEnd,
};

struct SqlToken {
  SqlTokenKind kind;
  std::string text;
  size_t position = 0;  ///< byte offset for error messages.
};

/// Tokenizes a SQL string. Keywords are recognised case-insensitively and
/// normalised to upper case; anything word-like that is not a keyword is an
/// identifier. Comments (`-- …\n`) are skipped.
Result<std::vector<SqlToken>> TokenizeSql(std::string_view input);

/// True if `word` (upper-case) is a reserved SQL keyword of our subset.
bool IsSqlKeyword(const std::string& upper_word);

}  // namespace relational
}  // namespace nimble

#endif  // NIMBLE_RELATIONAL_SQL_LEXER_H_
