#ifndef NIMBLE_RELATIONAL_DATABASE_H_
#define NIMBLE_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/executor.h"
#include "relational/table.h"

namespace nimble {
namespace relational {

/// An in-memory relational database: a named collection of tables plus a
/// SQL front door. This is the substrate standing in for the commercial
/// RDBMS sources behind the Nimble mediator (see DESIGN.md substitutions).
class Database {
 public:
  explicit Database(std::string name = "db") : name_(std::move(name)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }

  /// Creates a table from a schema object (programmatic path).
  Result<Table*> CreateTable(TableSchema schema);

  Table* GetTable(const std::string& table_name);
  const Table* GetTable(const std::string& table_name) const;

  std::vector<std::string> TableNames() const;

  /// Parses and executes any supported statement. DDL/DML return an empty
  /// ResultSet (rows_returned reflects affected rows for DML).
  Result<ResultSet> Execute(std::string_view sql);

  /// Executes a pre-parsed SELECT (the mediator path: the compiler builds a
  /// SelectStmt, serialises it to SQL for the wire, and the connector
  /// re-parses — this entry point is also used directly in tests).
  Result<ResultSet> Query(const SelectStmt& stmt) const;

  /// Sum of all table versions; cheap staleness cookie for materialization.
  uint64_t Version() const;

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace relational
}  // namespace nimble

#endif  // NIMBLE_RELATIONAL_DATABASE_H_
