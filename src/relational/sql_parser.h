#ifndef NIMBLE_RELATIONAL_SQL_PARSER_H_
#define NIMBLE_RELATIONAL_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "relational/sql_ast.h"

namespace nimble {
namespace relational {

/// Parses one SQL statement of the supported subset:
///   SELECT [DISTINCT] items FROM t [AS a] (JOIN t2 ON cond)* [WHERE cond]
///     [GROUP BY cols [HAVING cond]] [ORDER BY keys] [LIMIT n]
///   INSERT INTO t [(cols)] VALUES (…), (…)
///   CREATE TABLE t (col TYPE [PRIMARY KEY], …)
///   CREATE INDEX name ON t (col)
///   DELETE FROM t [WHERE cond]
///   UPDATE t SET col = expr, … [WHERE cond]
Result<SqlStatement> ParseSql(std::string_view sql);

/// Parses a standalone SQL expression (used in tests and view definitions).
Result<std::unique_ptr<SqlExpr>> ParseSqlExpression(std::string_view text);

}  // namespace relational
}  // namespace nimble

#endif  // NIMBLE_RELATIONAL_SQL_PARSER_H_
