#ifndef NIMBLE_RELATIONAL_EXECUTOR_H_
#define NIMBLE_RELATIONAL_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/sql_ast.h"
#include "relational/table.h"

namespace nimble {
namespace relational {

class Database;

/// Execution statistics, surfaced so the federation experiments (E3) can
/// demonstrate index usage and scan volumes inside the source engine.
struct ExecStats {
  size_t rows_scanned = 0;   ///< base rows read (post-index pre-filter).
  size_t rows_returned = 0;
  bool used_index = false;
  std::string index_name;
};

/// A query result: column names plus rows of scalars.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  ExecStats stats;
};

/// Executes a SELECT against `db`. The executor implements a
/// straightforward pipeline — index-assisted base access, hash/nested-loop
/// joins, filter, hash aggregation, sort, limit, projection — enough to be
/// a faithful "real RDBMS" endpoint for the mediator's generated SQL.
Result<ResultSet> ExecuteSelect(const Database& db, const SelectStmt& stmt);

/// SQL LIKE pattern matching ('%' = any run, '_' = any one char).
bool LikeMatch(const std::string& text, const std::string& pattern);

/// Evaluates a non-aggregate expression against one row of `schema`
/// (column refs resolve unqualified or qualified by the table name).
/// Used by DELETE/UPDATE and by the mediator's residual predicates.
Result<Value> EvaluateRowExpression(const SqlExpr& expr,
                                    const TableSchema& schema, const Row& row);

}  // namespace relational
}  // namespace nimble

#endif  // NIMBLE_RELATIONAL_EXECUTOR_H_
