#include "relational/sql_lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/strings.h"

namespace nimble {
namespace relational {

bool IsSqlKeyword(const std::string& upper_word) {
  static const std::unordered_set<std::string>* const kKeywords =
      new std::unordered_set<std::string>{
          "SELECT", "DISTINCT", "FROM", "WHERE", "JOIN", "LEFT", "OUTER",
          "ON", "AS",
          "GROUP",  "BY",       "HAVING", "ORDER", "ASC", "DESC", "LIMIT",
          "AND",    "OR",       "NOT",  "LIKE",  "IN",  "IS",  "NULL", "TRUE",
          "FALSE",  "INSERT",   "INTO", "VALUES", "CREATE", "TABLE", "INDEX",
          "PRIMARY", "KEY",     "DELETE", "UPDATE", "SET", "INT", "INTEGER",
          "DOUBLE", "FLOAT",    "REAL", "TEXT", "VARCHAR", "STRING", "BOOL",
          "BOOLEAN"};
  return kKeywords->count(upper_word) > 0;
}

Result<std::vector<SqlToken>> TokenizeSql(std::string_view input) {
  std::vector<SqlToken> tokens;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '-') {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        ++i;
      }
      std::string word(input.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (IsSqlKeyword(upper)) {
        tokens.push_back({SqlTokenKind::kKeyword, upper, start});
      } else {
        tokens.push_back({SqlTokenKind::kIdentifier, word, start});
      }
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[i])) ||
              input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
              ((input[i] == '+' || input[i] == '-') && i > start &&
               (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        if (input[i] == '.' || input[i] == 'e' || input[i] == 'E') {
          is_float = true;
        }
        ++i;
      }
      tokens.push_back({is_float ? SqlTokenKind::kFloat : SqlTokenKind::kInteger,
                        std::string(input.substr(start, i - start)), start});
      continue;
    }
    // Strings.
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < input.size()) {
        if (input[i] == '\'') {
          if (i + 1 < input.size() && input[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({SqlTokenKind::kString, std::move(text), start});
      continue;
    }
    // Operators.
    auto two = input.substr(i, 2);
    if (two == "!=" || two == "<>" || two == "<=" || two == ">=") {
      tokens.push_back(
          {SqlTokenKind::kOperator, two == "<>" ? "!=" : std::string(two), start});
      i += 2;
      continue;
    }
    static const std::string kSingles = "=<>+-*/%(),.";
    if (kSingles.find(c) != std::string::npos) {
      tokens.push_back({SqlTokenKind::kOperator, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  tokens.push_back({SqlTokenKind::kEnd, "", input.size()});
  return tokens;
}

}  // namespace relational
}  // namespace nimble
