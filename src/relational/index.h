#ifndef NIMBLE_RELATIONAL_INDEX_H_
#define NIMBLE_RELATIONAL_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "relational/schema.h"

namespace nimble {
namespace relational {

/// An ordered secondary index over one column. Maps column value → row ids.
/// Supports equality and range probes; the mediator's compiler consults
/// index presence when deciding what to push down (paper §2.1: the compiler
/// considers "the presence of indices on the data").
class OrderedIndex {
 public:
  OrderedIndex(std::string index_name, size_t column)
      : name_(std::move(index_name)), column_(column) {}

  const std::string& name() const { return name_; }
  size_t column() const { return column_; }

  void Insert(const Value& key, size_t row_id) {
    entries_.emplace(key, row_id);
  }

  void Clear() { entries_.clear(); }

  /// Row ids with column == key.
  std::vector<size_t> Lookup(const Value& key) const;

  /// Row ids with lo <= column <= hi (either bound may be null = open).
  std::vector<size_t> Range(const Value& lo, bool lo_inclusive,
                            const Value& hi, bool hi_inclusive) const;

  size_t size() const { return entries_.size(); }

 private:
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) < 0;
    }
  };

  std::string name_;
  size_t column_;
  std::multimap<Value, size_t, ValueLess> entries_;
};

}  // namespace relational
}  // namespace nimble

#endif  // NIMBLE_RELATIONAL_INDEX_H_
