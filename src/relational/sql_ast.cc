#include "relational/sql_ast.h"

#include "common/strings.h"

namespace nimble {
namespace relational {

std::unique_ptr<SqlExpr> SqlExpr::Literal(Value v) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<SqlExpr> SqlExpr::ColumnRef(std::string qualifier,
                                            std::string column) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = Kind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<SqlExpr> SqlExpr::Unary(std::string op,
                                        std::unique_ptr<SqlExpr> arg) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = Kind::kUnary;
  e->op = std::move(op);
  e->args.push_back(std::move(arg));
  return e;
}

std::unique_ptr<SqlExpr> SqlExpr::Binary(std::string op,
                                         std::unique_ptr<SqlExpr> lhs,
                                         std::unique_ptr<SqlExpr> rhs) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = Kind::kBinary;
  e->op = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

std::unique_ptr<SqlExpr> SqlExpr::Function(std::string name) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = Kind::kFunction;
  e->op = ToUpper(name);
  return e;
}

std::unique_ptr<SqlExpr> SqlExpr::Star() {
  auto e = std::make_unique<SqlExpr>();
  e->kind = Kind::kStar;
  return e;
}

std::unique_ptr<SqlExpr> SqlExpr::CloneExpr() const {
  auto e = std::make_unique<SqlExpr>();
  e->kind = kind;
  e->literal = literal;
  e->qualifier = qualifier;
  e->column = column;
  e->op = op;
  e->args.reserve(args.size());
  for (const auto& arg : args) e->args.push_back(arg->CloneExpr());
  return e;
}

namespace {

bool IsAggregateName(const std::string& name) {
  return name == "COUNT" || name == "SUM" || name == "AVG" || name == "MIN" ||
         name == "MAX";
}

}  // namespace

bool SqlExpr::ContainsAggregate() const {
  if (kind == Kind::kFunction && IsAggregateName(op)) return true;
  for (const auto& arg : args) {
    if (arg->ContainsAggregate()) return true;
  }
  return false;
}

std::string SqlQuote(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return v.AsBool() ? "TRUE" : "FALSE";
    case ValueType::kInt:
    case ValueType::kDouble:
      return v.ToString();
    case ValueType::kString:
      return "'" + ReplaceAll(v.AsString(), "'", "''") + "'";
  }
  return "NULL";
}

std::string SqlExpr::ToSql() const {
  switch (kind) {
    case Kind::kLiteral:
      return SqlQuote(literal);
    case Kind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case Kind::kStar:
      return "*";
    case Kind::kUnary:
      if (op == "ISNULL") return "(" + args[0]->ToSql() + " IS NULL)";
      if (op == "ISNOTNULL") return "(" + args[0]->ToSql() + " IS NOT NULL)";
      if (op == "NOT") return "(NOT " + args[0]->ToSql() + ")";
      return "(" + op + args[0]->ToSql() + ")";
    case Kind::kBinary:
      return "(" + args[0]->ToSql() + " " + op + " " + args[1]->ToSql() + ")";
    case Kind::kFunction: {
      if (op == "IN") {
        std::string out = "(" + args[0]->ToSql() + " IN (";
        for (size_t i = 1; i < args.size(); ++i) {
          if (i > 1) out += ", ";
          out += args[i]->ToSql();
        }
        return out + "))";
      }
      std::string out = op + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToSql();
      }
      return out + ")";
    }
  }
  return "";
}

std::string SelectStmt::ToSql() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (select_star) {
    out += "*";
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      out += items[i].expr->ToSql();
      if (!items[i].alias.empty()) out += " AS " + items[i].alias;
    }
  }
  out += " FROM " + from.table;
  if (!from.alias.empty()) out += " AS " + from.alias;
  for (const JoinClause& join : joins) {
    out += join.left_outer ? " LEFT JOIN " : " JOIN ";
    out += join.table.table;
    if (!join.table.alias.empty()) out += " AS " + join.table.alias;
    out += " ON " + join.condition->ToSql();
  }
  if (where != nullptr) out += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToSql();
    }
  }
  if (having != nullptr) out += " HAVING " + having->ToSql();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToSql();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

}  // namespace relational
}  // namespace nimble
