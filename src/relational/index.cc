#include "relational/index.h"

namespace nimble {
namespace relational {

std::vector<size_t> OrderedIndex::Lookup(const Value& key) const {
  std::vector<size_t> out;
  auto [lo, hi] = entries_.equal_range(key);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

std::vector<size_t> OrderedIndex::Range(const Value& lo, bool lo_inclusive,
                                        const Value& hi,
                                        bool hi_inclusive) const {
  std::vector<size_t> out;
  // An inverted range (lo > hi, or lo == hi with an exclusive end) is empty.
  // Without this guard `begin` can sit past `end` and the walk below never
  // terminates.
  if (!lo.is_null() && !hi.is_null()) {
    int cmp = lo.Compare(hi);
    if (cmp > 0 || (cmp == 0 && !(lo_inclusive && hi_inclusive))) return out;
  }
  auto begin = lo.is_null() ? entries_.begin()
               : lo_inclusive ? entries_.lower_bound(lo)
                              : entries_.upper_bound(lo);
  auto end = hi.is_null() ? entries_.end()
             : hi_inclusive ? entries_.upper_bound(hi)
                            : entries_.lower_bound(hi);
  for (auto it = begin; it != end; ++it) out.push_back(it->second);
  return out;
}

}  // namespace relational
}  // namespace nimble
