#ifndef NIMBLE_RELATIONAL_SCHEMA_H_
#define NIMBLE_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/value.h"

namespace nimble {
namespace relational {

/// A column definition. Column types reuse the library-wide scalar types.
struct Column {
  std::string name;
  ValueType type = ValueType::kString;
  bool nullable = true;
};

/// A row is a vector of scalars positionally aligned with the schema.
using Row = std::vector<Value>;

/// Table schema: ordered columns plus an optional primary-key column.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string table_name, std::vector<Column> columns)
      : name_(std::move(table_name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of `column_name`, or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& column_name) const;

  /// Declares `column_name` as the primary key (must exist).
  Status SetPrimaryKey(const std::string& column_name);
  std::optional<size_t> primary_key() const { return primary_key_; }

  /// Checks arity and column types of `row` against the schema. Integers
  /// are implicitly widened to double columns; null requires nullable.
  Status ValidateRow(const Row& row) const;

  /// Coerces `row` in place (int→double widening for double columns).
  void CoerceRow(Row* row) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::optional<size_t> primary_key_;
};

}  // namespace relational
}  // namespace nimble

#endif  // NIMBLE_RELATIONAL_SCHEMA_H_
