#include "relational/table.h"

namespace nimble {
namespace relational {

Status Table::Insert(Row row) {
  schema_.CoerceRow(&row);
  NIMBLE_RETURN_IF_ERROR(schema_.ValidateRow(row));
  if (schema_.primary_key().has_value()) {
    size_t pk = *schema_.primary_key();
    const Value& key = row[pk];
    const OrderedIndex* pk_index = FindIndexOn(pk);
    if (pk_index != nullptr) {
      if (!pk_index->Lookup(key).empty()) {
        return Status::AlreadyExists("duplicate primary key " + key.ToString() +
                                     " in table '" + schema_.name() + "'");
      }
    } else {
      for (size_t i = 0; i < rows_.size(); ++i) {
        if (!tombstones_[i] && rows_[i][pk] == key) {
          return Status::AlreadyExists("duplicate primary key " +
                                       key.ToString() + " in table '" +
                                       schema_.name() + "'");
        }
      }
    }
  }
  size_t row_id = rows_.size();
  for (auto& index : indexes_) {
    index->Insert(row[index->column()], row_id);
  }
  rows_.push_back(std::move(row));
  tombstones_.push_back(false);
  ++live_rows_;
  ++version_;
  return Status::OK();
}

void Table::Scan(const std::function<void(size_t, const Row&)>& fn) const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!tombstones_[i]) fn(i, rows_[i]);
  }
}

size_t Table::DeleteWhere(const std::function<bool(const Row&)>& predicate) {
  size_t removed = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!tombstones_[i] && predicate(rows_[i])) {
      tombstones_[i] = true;
      --live_rows_;
      ++removed;
    }
  }
  if (removed > 0) {
    RebuildIndexes();
    ++version_;
  }
  return removed;
}

Result<size_t> Table::UpdateWhere(
    const std::function<bool(const Row&)>& predicate,
    const std::function<void(Row*)>& mutate) {
  size_t updated = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!tombstones_[i] && predicate(rows_[i])) {
      mutate(&rows_[i]);
      schema_.CoerceRow(&rows_[i]);
      Status status = schema_.ValidateRow(rows_[i]);
      if (!status.ok()) return status;
      ++updated;
    }
  }
  if (updated > 0) {
    RebuildIndexes();
    ++version_;
  }
  return updated;
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::string& column) {
  std::optional<size_t> col = schema_.ColumnIndex(column);
  if (!col.has_value()) {
    return Status::NotFound("no column '" + column + "' in table '" +
                            schema_.name() + "'");
  }
  for (const auto& index : indexes_) {
    if (index->name() == index_name) {
      return Status::AlreadyExists("index '" + index_name + "' exists");
    }
  }
  auto index = std::make_unique<OrderedIndex>(index_name, *col);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!tombstones_[i]) index->Insert(rows_[i][*col], i);
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

const OrderedIndex* Table::FindIndexOn(const std::string& column) const {
  std::optional<size_t> col = schema_.ColumnIndex(column);
  if (!col.has_value()) return nullptr;
  return FindIndexOn(*col);
}

const OrderedIndex* Table::FindIndexOn(size_t column) const {
  for (const auto& index : indexes_) {
    if (index->column() == column) return index.get();
  }
  return nullptr;
}

void Table::RebuildIndexes() {
  for (auto& index : indexes_) {
    index->Clear();
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (!tombstones_[i]) index->Insert(rows_[i][index->column()], i);
    }
  }
}

}  // namespace relational
}  // namespace nimble
