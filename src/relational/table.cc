#include "relational/table.h"

namespace nimble {
namespace relational {

Status Table::Insert(Row row) {
  schema_.CoerceRow(&row);
  NIMBLE_RETURN_IF_ERROR(schema_.ValidateRow(row));
  if (schema_.primary_key().has_value()) {
    size_t pk = *schema_.primary_key();
    const Value& key = row[pk];
    const OrderedIndex* pk_index = FindIndexOn(pk);
    if (pk_index != nullptr) {
      if (!pk_index->Lookup(key).empty()) {
        return Status::AlreadyExists("duplicate primary key " + key.ToString() +
                                     " in table '" + schema_.name() + "'");
      }
    } else {
      const std::vector<Value>& pk_column = columns_[pk];
      for (size_t i = 0; i < num_rows_; ++i) {
        if (!tombstones_[i] && pk_column[i] == key) {
          return Status::AlreadyExists("duplicate primary key " +
                                       key.ToString() + " in table '" +
                                       schema_.name() + "'");
        }
      }
    }
  }
  size_t row_id = num_rows_;
  for (auto& index : indexes_) {
    index->Insert(row[index->column()], row_id);
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  ++num_rows_;
  tombstones_.push_back(false);
  ++live_rows_;
  ++version_;
  return Status::OK();
}

Row Table::MaterializeRow(size_t row_id) const {
  Row row;
  row.reserve(columns_.size());
  for (const std::vector<Value>& column : columns_) {
    row.push_back(column[row_id]);
  }
  return row;
}

void Table::CopyRowInto(size_t row_id, Row* out) const {
  out->resize(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    (*out)[c] = columns_[c][row_id];
  }
}

void Table::StoreRow(size_t row_id, const Row& row) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c][row_id] = row[c];
  }
}

size_t Table::DeleteWhere(const std::function<bool(const Row&)>& predicate) {
  size_t removed = 0;
  Row scratch;
  for (size_t i = 0; i < num_rows_; ++i) {
    if (tombstones_[i]) continue;
    CopyRowInto(i, &scratch);
    if (predicate(scratch)) {
      tombstones_[i] = true;
      ++tombstone_count_;
      --live_rows_;
      ++removed;
    }
  }
  if (removed > 0) {
    RebuildIndexes();
    ++version_;
  }
  return removed;
}

Result<size_t> Table::UpdateWhere(
    const std::function<bool(const Row&)>& predicate,
    const std::function<void(Row*)>& mutate) {
  size_t updated = 0;
  Row scratch;
  for (size_t i = 0; i < num_rows_; ++i) {
    if (tombstones_[i]) continue;
    CopyRowInto(i, &scratch);
    if (predicate(scratch)) {
      mutate(&scratch);
      schema_.CoerceRow(&scratch);
      // Store before validating: historically the mutation was applied in
      // place, so even the offending row keeps its new value on abort.
      StoreRow(i, scratch);
      Status status = schema_.ValidateRow(scratch);
      if (!status.ok()) return status;
      ++updated;
    }
  }
  if (updated > 0) {
    RebuildIndexes();
    ++version_;
  }
  return updated;
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::string& column) {
  std::optional<size_t> col = schema_.ColumnIndex(column);
  if (!col.has_value()) {
    return Status::NotFound("no column '" + column + "' in table '" +
                            schema_.name() + "'");
  }
  for (const auto& index : indexes_) {
    if (index->name() == index_name) {
      return Status::AlreadyExists("index '" + index_name + "' exists");
    }
  }
  auto index = std::make_unique<OrderedIndex>(index_name, *col);
  const std::vector<Value>& values = columns_[*col];
  ForEachLiveRow([&](size_t i) { index->Insert(values[i], i); });
  indexes_.push_back(std::move(index));
  return Status::OK();
}

const OrderedIndex* Table::FindIndexOn(const std::string& column) const {
  std::optional<size_t> col = schema_.ColumnIndex(column);
  if (!col.has_value()) return nullptr;
  return FindIndexOn(*col);
}

const OrderedIndex* Table::FindIndexOn(size_t column) const {
  for (const auto& index : indexes_) {
    if (index->column() == column) return index.get();
  }
  return nullptr;
}

void Table::RebuildIndexes() {
  for (auto& index : indexes_) {
    index->Clear();
    const std::vector<Value>& values = columns_[index->column()];
    ForEachLiveRow([&](size_t i) { index->Insert(values[i], i); });
  }
}

}  // namespace relational
}  // namespace nimble
