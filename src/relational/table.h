#ifndef NIMBLE_RELATIONAL_TABLE_H_
#define NIMBLE_RELATIONAL_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relational/index.h"
#include "relational/schema.h"

namespace nimble {
namespace relational {

/// An in-memory heap table with optional secondary indexes. Deleted rows
/// are tombstoned (cheap deletes) and skipped by scans; indexes are rebuilt
/// lazily after deletions.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }

  /// Validates, coerces and appends `row`. Enforces primary-key uniqueness
  /// when a primary key is declared. Updates indexes.
  Status Insert(Row row);

  /// Number of live rows.
  size_t size() const { return live_rows_; }

  /// Calls `fn(row_id, row)` for every live row.
  void Scan(const std::function<void(size_t, const Row&)>& fn) const;

  /// Access a row by id. The caller must know the id is live.
  const Row& row(size_t row_id) const { return rows_[row_id]; }
  bool IsLive(size_t row_id) const {
    return row_id < rows_.size() && !tombstones_[row_id];
  }

  /// Deletes all rows matching `predicate`; returns the count removed.
  size_t DeleteWhere(const std::function<bool(const Row&)>& predicate);

  /// Applies `mutate` to all rows matching `predicate`; returns the count.
  /// Mutated rows are re-validated; on type failure the update aborts with
  /// the offending status (already-updated rows keep their new values).
  Result<size_t> UpdateWhere(const std::function<bool(const Row&)>& predicate,
                             const std::function<void(Row*)>& mutate);

  /// Creates an ordered secondary index named `index_name` over `column`.
  Status CreateIndex(const std::string& index_name, const std::string& column);

  /// The index over `column`, or nullptr.
  const OrderedIndex* FindIndexOn(const std::string& column) const;
  const OrderedIndex* FindIndexOn(size_t column) const;

  const std::vector<std::unique_ptr<OrderedIndex>>& indexes() const {
    return indexes_;
  }

  /// Monotone version counter, bumped by every mutation. Used by the
  /// materialization layer to detect staleness.
  uint64_t version() const { return version_; }

 private:
  void RebuildIndexes();

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<bool> tombstones_;
  size_t live_rows_ = 0;
  std::vector<std::unique_ptr<OrderedIndex>> indexes_;
  uint64_t version_ = 0;
};

}  // namespace relational
}  // namespace nimble

#endif  // NIMBLE_RELATIONAL_TABLE_H_
