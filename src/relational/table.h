#ifndef NIMBLE_RELATIONAL_TABLE_H_
#define NIMBLE_RELATIONAL_TABLE_H_

#include <cassert>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relational/index.h"
#include "relational/schema.h"

namespace nimble {
namespace relational {

/// An in-memory column-store table with optional secondary indexes: one
/// Value vector per schema column, so scans and join builds read the
/// columns they need without materializing intermediate Rows. Deleted rows
/// are tombstoned in a bitmap (cheap deletes); the live tombstone count is
/// tracked so scans over a dense table (the common case) skip the bitmap
/// entirely. Indexes are rebuilt lazily after deletions.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {
    columns_.resize(schema_.num_columns());
  }

  const TableSchema& schema() const { return schema_; }

  /// Validates, coerces and appends `row`. Enforces primary-key uniqueness
  /// when a primary key is declared. Updates indexes.
  Status Insert(Row row);

  /// Number of live rows.
  size_t size() const { return live_rows_; }

  /// Physical row count, including tombstoned rows. Row ids range over
  /// [0, physical_size()).
  size_t physical_size() const { return num_rows_; }

  /// True when no row is tombstoned — every row id in [0, physical_size())
  /// is live and scans need not consult the bitmap.
  bool dense() const { return tombstone_count_ == 0; }

  /// The full value array of one column (indexed by physical row id,
  /// tombstoned slots included).
  const std::vector<Value>& column_values(size_t column) const {
    return columns_[column];
  }

  /// Value at (physical row id, column).
  const Value& at(size_t row_id, size_t column) const {
    return columns_[column][row_id];
  }

  /// Materializes a physical row id as a row-major Row. The caller must
  /// know the id is live.
  Row MaterializeRow(size_t row_id) const;

  /// Overwrites `*out` (resized to the table arity) with row `row_id`,
  /// reusing its capacity — the allocation-free variant of MaterializeRow
  /// for tight scan loops.
  void CopyRowInto(size_t row_id, Row* out) const;

  bool IsLive(size_t row_id) const {
    return row_id < num_rows_ && !tombstones_[row_id];
  }

  /// Calls `fn(row_id)` for every live row. When the table is dense the
  /// tombstone bitmap is never consulted.
  template <typename Fn>
  void ForEachLiveRow(Fn&& fn) const {
    if (tombstone_count_ == 0) {
      for (size_t i = 0; i < num_rows_; ++i) fn(i);
      return;
    }
    for (size_t i = 0; i < num_rows_; ++i) {
      if (!tombstones_[i]) fn(i);
    }
  }

  /// Deletes all rows matching `predicate`; returns the count removed.
  size_t DeleteWhere(const std::function<bool(const Row&)>& predicate);

  /// Applies `mutate` to all rows matching `predicate`; returns the count.
  /// Mutated rows are re-validated; on type failure the update aborts with
  /// the offending status (already-updated rows keep their new values).
  Result<size_t> UpdateWhere(const std::function<bool(const Row&)>& predicate,
                             const std::function<void(Row*)>& mutate);

  /// Creates an ordered secondary index named `index_name` over `column`.
  Status CreateIndex(const std::string& index_name, const std::string& column);

  /// The index over `column`, or nullptr.
  const OrderedIndex* FindIndexOn(const std::string& column) const;
  const OrderedIndex* FindIndexOn(size_t column) const;

  const std::vector<std::unique_ptr<OrderedIndex>>& indexes() const {
    return indexes_;
  }

  /// Monotone version counter, bumped by every mutation. Used by the
  /// materialization layer to detect staleness.
  uint64_t version() const { return version_; }

 private:
  void RebuildIndexes();
  /// Writes `row` back into the column arrays at `row_id`.
  void StoreRow(size_t row_id, const Row& row);

  TableSchema schema_;
  std::vector<std::vector<Value>> columns_;  ///< [column][physical row].
  size_t num_rows_ = 0;
  std::vector<bool> tombstones_;
  size_t tombstone_count_ = 0;
  size_t live_rows_ = 0;
  std::vector<std::unique_ptr<OrderedIndex>> indexes_;
  uint64_t version_ = 0;
};

}  // namespace relational
}  // namespace nimble

#endif  // NIMBLE_RELATIONAL_TABLE_H_
