#include "relational/sql_parser.h"

#include <cstdlib>

#include "common/strings.h"
#include "relational/sql_lexer.h"

namespace nimble {
namespace relational {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<SqlToken> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlStatement> ParseStatement() {
    if (PeekKeyword("SELECT")) {
      NIMBLE_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect());
      NIMBLE_RETURN_IF_ERROR(ExpectEnd());
      return SqlStatement(std::move(stmt));
    }
    if (PeekKeyword("INSERT")) {
      NIMBLE_ASSIGN_OR_RETURN(InsertStmt stmt, ParseInsert());
      NIMBLE_RETURN_IF_ERROR(ExpectEnd());
      return SqlStatement(std::move(stmt));
    }
    if (PeekKeyword("CREATE")) {
      ++pos_;
      if (PeekKeyword("TABLE")) {
        NIMBLE_ASSIGN_OR_RETURN(CreateTableStmt stmt, ParseCreateTable());
        NIMBLE_RETURN_IF_ERROR(ExpectEnd());
        return SqlStatement(std::move(stmt));
      }
      if (PeekKeyword("INDEX")) {
        NIMBLE_ASSIGN_OR_RETURN(CreateIndexStmt stmt, ParseCreateIndex());
        NIMBLE_RETURN_IF_ERROR(ExpectEnd());
        return SqlStatement(std::move(stmt));
      }
      return Error("expected TABLE or INDEX after CREATE");
    }
    if (PeekKeyword("DELETE")) {
      NIMBLE_ASSIGN_OR_RETURN(DeleteStmt stmt, ParseDelete());
      NIMBLE_RETURN_IF_ERROR(ExpectEnd());
      return SqlStatement(std::move(stmt));
    }
    if (PeekKeyword("UPDATE")) {
      NIMBLE_ASSIGN_OR_RETURN(UpdateStmt stmt, ParseUpdate());
      NIMBLE_RETURN_IF_ERROR(ExpectEnd());
      return SqlStatement(std::move(stmt));
    }
    return Error("expected SELECT, INSERT, CREATE, DELETE or UPDATE");
  }

  Result<std::unique_ptr<SqlExpr>> ParseStandaloneExpression() {
    NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> expr, ParseExpr());
    NIMBLE_RETURN_IF_ERROR(ExpectEnd());
    return expr;
  }

 private:
  const SqlToken& Peek() const { return tokens_[pos_]; }
  bool PeekKeyword(const char* kw) const {
    return Peek().kind == SqlTokenKind::kKeyword && Peek().text == kw;
  }
  bool PeekOperator(const char* op) const {
    return Peek().kind == SqlTokenKind::kOperator && Peek().text == op;
  }
  bool ConsumeKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeOperator(const char* op) {
    if (PeekOperator(op)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& what) const {
    return Status::ParseError("SQL parse error near offset " +
                              std::to_string(Peek().position) + " ('" +
                              Peek().text + "'): " + what);
  }
  Status ExpectKeyword(const char* kw) {
    if (!ConsumeKeyword(kw)) return Error(std::string("expected ") + kw);
    return Status::OK();
  }
  Status ExpectOperator(const char* op) {
    if (!ConsumeOperator(op)) {
      return Error(std::string("expected '") + op + "'");
    }
    return Status::OK();
  }
  Status ExpectEnd() {
    if (Peek().kind != SqlTokenKind::kEnd) return Error("trailing tokens");
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != SqlTokenKind::kIdentifier) {
      return Error("expected identifier");
    }
    return tokens_[pos_++].text;
  }

  // ---- SELECT -------------------------------------------------------------

  Result<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    NIMBLE_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    stmt.distinct = ConsumeKeyword("DISTINCT");
    if (ConsumeOperator("*")) {
      stmt.select_star = true;
    } else {
      while (true) {
        SelectItem item;
        NIMBLE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("AS")) {
          NIMBLE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        } else if (Peek().kind == SqlTokenKind::kIdentifier) {
          item.alias = tokens_[pos_++].text;  // bare alias
        }
        stmt.items.push_back(std::move(item));
        if (!ConsumeOperator(",")) break;
      }
    }
    NIMBLE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    NIMBLE_ASSIGN_OR_RETURN(stmt.from, ParseTableRef());
    while (true) {
      JoinClause join;
      if (ConsumeKeyword("LEFT")) {
        ConsumeKeyword("OUTER");  // optional
        NIMBLE_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        join.left_outer = true;
      } else if (!ConsumeKeyword("JOIN")) {
        break;
      }
      NIMBLE_ASSIGN_OR_RETURN(join.table, ParseTableRef());
      NIMBLE_RETURN_IF_ERROR(ExpectKeyword("ON"));
      NIMBLE_ASSIGN_OR_RETURN(join.condition, ParseExpr());
      stmt.joins.push_back(std::move(join));
    }
    if (ConsumeKeyword("WHERE")) {
      NIMBLE_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      NIMBLE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> key, ParseExpr());
        stmt.group_by.push_back(std::move(key));
        if (!ConsumeOperator(",")) break;
      }
      if (ConsumeKeyword("HAVING")) {
        NIMBLE_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
      }
    }
    if (ConsumeKeyword("ORDER")) {
      NIMBLE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderKey key;
        NIMBLE_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          key.descending = true;
        } else {
          ConsumeKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(key));
        if (!ConsumeOperator(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().kind != SqlTokenKind::kInteger) {
        return Error("expected integer after LIMIT");
      }
      stmt.limit = std::strtoll(tokens_[pos_++].text.c_str(), nullptr, 10);
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    NIMBLE_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
    if (ConsumeKeyword("AS")) {
      NIMBLE_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Peek().kind == SqlTokenKind::kIdentifier) {
      ref.alias = tokens_[pos_++].text;
    }
    return ref;
  }

  // ---- INSERT / CREATE / DELETE / UPDATE ------------------------------------

  Result<InsertStmt> ParseInsert() {
    InsertStmt stmt;
    NIMBLE_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    NIMBLE_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    NIMBLE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (ConsumeOperator("(")) {
      while (true) {
        NIMBLE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt.columns.push_back(std::move(col));
        if (!ConsumeOperator(",")) break;
      }
      NIMBLE_RETURN_IF_ERROR(ExpectOperator(")"));
    }
    NIMBLE_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      NIMBLE_RETURN_IF_ERROR(ExpectOperator("("));
      std::vector<Value> row;
      while (true) {
        NIMBLE_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        row.push_back(std::move(v));
        if (!ConsumeOperator(",")) break;
      }
      NIMBLE_RETURN_IF_ERROR(ExpectOperator(")"));
      stmt.rows.push_back(std::move(row));
      if (!ConsumeOperator(",")) break;
    }
    return stmt;
  }

  Result<Value> ParseLiteralValue() {
    bool negative = ConsumeOperator("-");
    const SqlToken& tok = Peek();
    switch (tok.kind) {
      case SqlTokenKind::kInteger: {
        int64_t v = std::strtoll(tok.text.c_str(), nullptr, 10);
        ++pos_;
        return Value::Int(negative ? -v : v);
      }
      case SqlTokenKind::kFloat: {
        double v = std::strtod(tok.text.c_str(), nullptr);
        ++pos_;
        return Value::Double(negative ? -v : v);
      }
      case SqlTokenKind::kString: {
        if (negative) return Error("'-' before string literal");
        std::string s = tok.text;
        ++pos_;
        return Value::String(std::move(s));
      }
      case SqlTokenKind::kKeyword:
        if (negative) return Error("'-' before keyword literal");
        if (ConsumeKeyword("NULL")) return Value::Null();
        if (ConsumeKeyword("TRUE")) return Value::Bool(true);
        if (ConsumeKeyword("FALSE")) return Value::Bool(false);
        return Error("expected literal");
      default:
        return Error("expected literal");
    }
  }

  Result<CreateTableStmt> ParseCreateTable() {
    CreateTableStmt stmt;
    NIMBLE_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    NIMBLE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    NIMBLE_RETURN_IF_ERROR(ExpectOperator("("));
    while (true) {
      Column col;
      NIMBLE_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      if (Peek().kind != SqlTokenKind::kKeyword) {
        return Error("expected a column type");
      }
      std::string type = tokens_[pos_++].text;
      if (type == "INT" || type == "INTEGER") {
        col.type = ValueType::kInt;
      } else if (type == "DOUBLE" || type == "FLOAT" || type == "REAL") {
        col.type = ValueType::kDouble;
      } else if (type == "TEXT" || type == "VARCHAR" || type == "STRING") {
        col.type = ValueType::kString;
        // Optional VARCHAR(n) size, ignored.
        if (ConsumeOperator("(")) {
          if (Peek().kind == SqlTokenKind::kInteger) ++pos_;
          NIMBLE_RETURN_IF_ERROR(ExpectOperator(")"));
        }
      } else if (type == "BOOL" || type == "BOOLEAN") {
        col.type = ValueType::kBool;
      } else {
        return Error("unknown column type " + type);
      }
      if (ConsumeKeyword("PRIMARY")) {
        NIMBLE_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        stmt.primary_key = col.name;
        col.nullable = false;
      }
      if (ConsumeKeyword("NOT")) {
        NIMBLE_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        col.nullable = false;
      }
      stmt.columns.push_back(std::move(col));
      if (!ConsumeOperator(",")) break;
    }
    NIMBLE_RETURN_IF_ERROR(ExpectOperator(")"));
    return stmt;
  }

  Result<CreateIndexStmt> ParseCreateIndex() {
    CreateIndexStmt stmt;
    NIMBLE_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    NIMBLE_ASSIGN_OR_RETURN(stmt.index_name, ExpectIdentifier());
    NIMBLE_RETURN_IF_ERROR(ExpectKeyword("ON"));
    NIMBLE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    NIMBLE_RETURN_IF_ERROR(ExpectOperator("("));
    NIMBLE_ASSIGN_OR_RETURN(stmt.column, ExpectIdentifier());
    NIMBLE_RETURN_IF_ERROR(ExpectOperator(")"));
    return stmt;
  }

  Result<DeleteStmt> ParseDelete() {
    DeleteStmt stmt;
    NIMBLE_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    NIMBLE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    NIMBLE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (ConsumeKeyword("WHERE")) {
      NIMBLE_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return stmt;
  }

  Result<UpdateStmt> ParseUpdate() {
    UpdateStmt stmt;
    NIMBLE_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    NIMBLE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    NIMBLE_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      NIMBLE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      NIMBLE_RETURN_IF_ERROR(ExpectOperator("="));
      NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> expr, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(expr));
      if (!ConsumeOperator(",")) break;
    }
    if (ConsumeKeyword("WHERE")) {
      NIMBLE_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return stmt;
  }

  // ---- Expressions (precedence climbing) -----------------------------------

  Result<std::unique_ptr<SqlExpr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<SqlExpr>> ParseOr() {
    NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> lhs, ParseAnd());
    while (ConsumeKeyword("OR")) {
      NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> rhs, ParseAnd());
      lhs = SqlExpr::Binary("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<SqlExpr>> ParseAnd() {
    NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> lhs, ParseNot());
    while (ConsumeKeyword("AND")) {
      NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> rhs, ParseNot());
      lhs = SqlExpr::Binary("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<SqlExpr>> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> arg, ParseNot());
      return SqlExpr::Unary("NOT", std::move(arg));
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<SqlExpr>> ParseComparison() {
    NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> lhs, ParseAdditive());
    if (ConsumeKeyword("IS")) {
      bool negated = ConsumeKeyword("NOT");
      NIMBLE_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return SqlExpr::Unary(negated ? "ISNOTNULL" : "ISNULL", std::move(lhs));
    }
    if (ConsumeKeyword("LIKE")) {
      NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> rhs, ParseAdditive());
      return SqlExpr::Binary("LIKE", std::move(lhs), std::move(rhs));
    }
    if (ConsumeKeyword("IN")) {
      NIMBLE_RETURN_IF_ERROR(ExpectOperator("("));
      std::unique_ptr<SqlExpr> in = SqlExpr::Function("IN");
      in->args.push_back(std::move(lhs));
      while (true) {
        NIMBLE_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        in->args.push_back(SqlExpr::Literal(std::move(v)));
        if (!ConsumeOperator(",")) break;
      }
      NIMBLE_RETURN_IF_ERROR(ExpectOperator(")"));
      return in;
    }
    for (const char* op : {"=", "!=", "<=", ">=", "<", ">"}) {
      if (ConsumeOperator(op)) {
        NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> rhs, ParseAdditive());
        return SqlExpr::Binary(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<std::unique_ptr<SqlExpr>> ParseAdditive() {
    NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> lhs, ParseMultiplicative());
    while (true) {
      const char* op = nullptr;
      if (PeekOperator("+")) {
        op = "+";
      } else if (PeekOperator("-")) {
        op = "-";
      } else {
        break;
      }
      ++pos_;
      NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> rhs,
                              ParseMultiplicative());
      lhs = SqlExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<SqlExpr>> ParseMultiplicative() {
    NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> lhs, ParseUnary());
    while (true) {
      const char* op = nullptr;
      if (PeekOperator("*")) {
        op = "*";
      } else if (PeekOperator("/")) {
        op = "/";
      } else if (PeekOperator("%")) {
        op = "%";
      } else {
        break;
      }
      ++pos_;
      NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> rhs, ParseUnary());
      lhs = SqlExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<SqlExpr>> ParseUnary() {
    if (ConsumeOperator("-")) {
      NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> arg, ParseUnary());
      return SqlExpr::Unary("-", std::move(arg));
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<SqlExpr>> ParsePrimary() {
    const SqlToken& tok = Peek();
    switch (tok.kind) {
      case SqlTokenKind::kInteger: {
        int64_t v = std::strtoll(tok.text.c_str(), nullptr, 10);
        ++pos_;
        return SqlExpr::Literal(Value::Int(v));
      }
      case SqlTokenKind::kFloat: {
        double v = std::strtod(tok.text.c_str(), nullptr);
        ++pos_;
        return SqlExpr::Literal(Value::Double(v));
      }
      case SqlTokenKind::kString: {
        std::string s = tok.text;
        ++pos_;
        return SqlExpr::Literal(Value::String(std::move(s)));
      }
      case SqlTokenKind::kKeyword:
        if (ConsumeKeyword("NULL")) return SqlExpr::Literal(Value::Null());
        if (ConsumeKeyword("TRUE")) return SqlExpr::Literal(Value::Bool(true));
        if (ConsumeKeyword("FALSE")) {
          return SqlExpr::Literal(Value::Bool(false));
        }
        return Error("unexpected keyword in expression");
      case SqlTokenKind::kOperator:
        if (ConsumeOperator("(")) {
          NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> inner, ParseExpr());
          NIMBLE_RETURN_IF_ERROR(ExpectOperator(")"));
          return inner;
        }
        return Error("unexpected token in expression");
      case SqlTokenKind::kIdentifier: {
        std::string first = tokens_[pos_++].text;
        // Function call?
        if (ConsumeOperator("(")) {
          std::unique_ptr<SqlExpr> fn = SqlExpr::Function(first);
          if (ConsumeOperator("*")) {
            fn->args.push_back(SqlExpr::Star());
          } else if (!PeekOperator(")")) {
            while (true) {
              NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> arg,
                                      ParseExpr());
              fn->args.push_back(std::move(arg));
              if (!ConsumeOperator(",")) break;
            }
          }
          NIMBLE_RETURN_IF_ERROR(ExpectOperator(")"));
          return fn;
        }
        // Qualified column?
        if (ConsumeOperator(".")) {
          NIMBLE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          return SqlExpr::ColumnRef(first, col);
        }
        return SqlExpr::ColumnRef("", first);
      }
      case SqlTokenKind::kEnd:
        return Error("unexpected end of input in expression");
    }
    return Error("unexpected token");
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlStatement> ParseSql(std::string_view sql) {
  NIMBLE_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, TokenizeSql(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<std::unique_ptr<SqlExpr>> ParseSqlExpression(std::string_view text) {
  NIMBLE_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, TokenizeSql(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace relational
}  // namespace nimble
