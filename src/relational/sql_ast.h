#ifndef NIMBLE_RELATIONAL_SQL_AST_H_
#define NIMBLE_RELATIONAL_SQL_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "relational/schema.h"
#include "xml/value.h"

namespace nimble {
namespace relational {

/// A SQL expression node. One compact struct covers the whole subset:
/// literals, (qualified) column references, unary/binary operators and
/// function calls (scalar and aggregate).
struct SqlExpr {
  enum class Kind {
    kLiteral,
    kColumnRef,
    kUnary,     ///< op in {"NOT", "-", "ISNULL", "ISNOTNULL"}
    kBinary,    ///< op in {"=","!=","<","<=",">",">=","+","-","*","/","%",
                ///<        "AND","OR","LIKE"}
    kFunction,  ///< name in {"COUNT","SUM","AVG","MIN","MAX","UPPER",
                ///<          "LOWER","LENGTH","ABS"}; also the variadic
                ///<          "IN" (args[0] = probe, args[1..] = list).
    kStar,      ///< only inside COUNT(*)
  };

  Kind kind = Kind::kLiteral;
  Value literal;
  std::string qualifier;  ///< table alias for column refs; may be empty.
  std::string column;
  std::string op;  ///< operator symbol or function name (upper-cased).
  std::vector<std::unique_ptr<SqlExpr>> args;

  static std::unique_ptr<SqlExpr> Literal(Value v);
  static std::unique_ptr<SqlExpr> ColumnRef(std::string qualifier,
                                            std::string column);
  static std::unique_ptr<SqlExpr> Unary(std::string op,
                                        std::unique_ptr<SqlExpr> arg);
  static std::unique_ptr<SqlExpr> Binary(std::string op,
                                         std::unique_ptr<SqlExpr> lhs,
                                         std::unique_ptr<SqlExpr> rhs);
  static std::unique_ptr<SqlExpr> Function(std::string name);
  static std::unique_ptr<SqlExpr> Star();

  std::unique_ptr<SqlExpr> CloneExpr() const;

  /// True if this subtree contains an aggregate function call.
  bool ContainsAggregate() const;

  /// Renders the expression back to SQL text (used by the mediator's SQL
  /// generator and by tests).
  std::string ToSql() const;
};

/// One projection item: expression plus optional alias.
struct SelectItem {
  std::unique_ptr<SqlExpr> expr;
  std::string alias;
};

/// A table reference with optional alias.
struct TableRef {
  std::string table;
  std::string alias;  ///< effective name: alias if set, else table.
  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

struct JoinClause {
  TableRef table;
  std::unique_ptr<SqlExpr> condition;  ///< ON expression.
  /// LEFT [OUTER] JOIN: unmatched left rows survive with nulls on the
  /// right side.
  bool left_outer = false;
};

struct OrderKey {
  std::unique_ptr<SqlExpr> expr;
  bool descending = false;
};

struct SelectStmt {
  bool distinct = false;
  bool select_star = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  std::unique_ptr<SqlExpr> where;
  std::vector<std::unique_ptr<SqlExpr>> group_by;
  std::unique_ptr<SqlExpr> having;
  std::vector<OrderKey> order_by;
  int64_t limit = -1;  ///< -1 = no limit.

  /// Renders back to SQL text.
  std::string ToSql() const;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  ///< empty = schema order.
  std::vector<std::vector<Value>> rows;
};

struct CreateTableStmt {
  std::string table;
  std::vector<Column> columns;
  std::string primary_key;  ///< empty = none.
};

struct CreateIndexStmt {
  std::string index_name;
  std::string table;
  std::string column;
};

struct DeleteStmt {
  std::string table;
  std::unique_ptr<SqlExpr> where;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, std::unique_ptr<SqlExpr>>> assignments;
  std::unique_ptr<SqlExpr> where;
};

/// A parsed SQL statement.
using SqlStatement = std::variant<SelectStmt, InsertStmt, CreateTableStmt,
                                  CreateIndexStmt, DeleteStmt, UpdateStmt>;

/// Quotes a scalar for embedding in SQL text ('…' with doubled quotes for
/// strings; NULL for null).
std::string SqlQuote(const Value& v);

}  // namespace relational
}  // namespace nimble

#endif  // NIMBLE_RELATIONAL_SQL_AST_H_
