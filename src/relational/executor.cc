#include "relational/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/strings.h"
#include "relational/database.h"

namespace nimble {
namespace relational {

namespace {

/// Column-name resolution scope for (possibly joined) rows: one slot per
/// column of the concatenated row, tagged with its table alias.
struct Scope {
  std::vector<std::pair<std::string, std::string>> slots;  // (qualifier, col)

  void AddTable(const std::string& qualifier, const TableSchema& schema) {
    for (const Column& col : schema.columns()) {
      slots.emplace_back(qualifier, col.name);
    }
  }

  Result<size_t> Resolve(const std::string& qualifier,
                         const std::string& column) const {
    size_t found = slots.size();
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].second != column) continue;
      if (!qualifier.empty() && slots[i].first != qualifier) continue;
      if (found != slots.size()) {
        return Status::InvalidArgument("ambiguous column reference '" +
                                       column + "'");
      }
      found = i;
    }
    if (found == slots.size()) {
      return Status::NotFound("unknown column '" +
                              (qualifier.empty() ? column
                                                 : qualifier + "." + column) +
                              "'");
    }
    return found;
  }
};

/// Group context: non-null while evaluating aggregate projections.
struct GroupContext {
  const std::vector<const Row*>* rows = nullptr;
};

Result<Value> Evaluate(const SqlExpr& expr, const Scope& scope, const Row& row,
                       const GroupContext* group);

Result<Value> EvaluateAggregate(const SqlExpr& expr, const Scope& scope,
                                const GroupContext& group) {
  const std::vector<const Row*>& rows = *group.rows;
  if (expr.op == "COUNT") {
    if (!expr.args.empty() && expr.args[0]->kind == SqlExpr::Kind::kStar) {
      return Value::Int(static_cast<int64_t>(rows.size()));
    }
    int64_t count = 0;
    for (const Row* r : rows) {
      NIMBLE_ASSIGN_OR_RETURN(Value v,
                              Evaluate(*expr.args[0], scope, *r, nullptr));
      if (!v.is_null()) ++count;
    }
    return Value::Int(count);
  }
  if (expr.args.empty()) {
    return Status::InvalidArgument(expr.op + " requires an argument");
  }
  bool any = false;
  double sum = 0;
  bool all_int = true;
  int64_t isum = 0;
  Value min_v, max_v;
  int64_t n = 0;
  for (const Row* r : rows) {
    NIMBLE_ASSIGN_OR_RETURN(Value v,
                            Evaluate(*expr.args[0], scope, *r, nullptr));
    if (v.is_null()) continue;
    if (!any) {
      min_v = v;
      max_v = v;
      any = true;
    } else {
      if (v.Compare(min_v) < 0) min_v = v;
      if (v.Compare(max_v) > 0) max_v = v;
    }
    if (expr.op == "SUM" || expr.op == "AVG") {
      NIMBLE_ASSIGN_OR_RETURN(double d, v.ToDouble());
      sum += d;
      if (v.is_int()) {
        isum += v.AsInt();
      } else {
        all_int = false;
      }
    }
    ++n;
  }
  if (expr.op == "MIN") return any ? min_v : Value::Null();
  if (expr.op == "MAX") return any ? max_v : Value::Null();
  if (expr.op == "SUM") {
    if (!any) return Value::Null();
    return all_int ? Value::Int(isum) : Value::Double(sum);
  }
  if (expr.op == "AVG") {
    if (!any) return Value::Null();
    return Value::Double(sum / static_cast<double>(n));
  }
  return Status::Unsupported("aggregate " + expr.op);
}

Result<Value> EvaluateBinary(const SqlExpr& expr, const Scope& scope,
                             const Row& row, const GroupContext* group) {
  const std::string& op = expr.op;
  // Short-circuit logical operators.
  if (op == "AND" || op == "OR") {
    NIMBLE_ASSIGN_OR_RETURN(Value lhs,
                            Evaluate(*expr.args[0], scope, row, group));
    bool l = lhs.Truthy();
    if (op == "AND" && !l) return Value::Bool(false);
    if (op == "OR" && l) return Value::Bool(true);
    NIMBLE_ASSIGN_OR_RETURN(Value rhs,
                            Evaluate(*expr.args[1], scope, row, group));
    return Value::Bool(rhs.Truthy());
  }
  NIMBLE_ASSIGN_OR_RETURN(Value lhs, Evaluate(*expr.args[0], scope, row, group));
  NIMBLE_ASSIGN_OR_RETURN(Value rhs, Evaluate(*expr.args[1], scope, row, group));
  if (op == "LIKE") {
    if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
    return Value::Bool(LikeMatch(lhs.ToString(), rhs.ToString()));
  }
  // SQL three-valued comparison: null operand → false.
  if (op == "=" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
      op == ">=") {
    if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
    int cmp = lhs.Compare(rhs);
    if (op == "=") return Value::Bool(cmp == 0);
    if (op == "!=") return Value::Bool(cmp != 0);
    if (op == "<") return Value::Bool(cmp < 0);
    if (op == "<=") return Value::Bool(cmp <= 0);
    if (op == ">") return Value::Bool(cmp > 0);
    return Value::Bool(cmp >= 0);
  }
  // Arithmetic: null-propagating; string '+' concatenates.
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  if (op == "+" && (lhs.is_string() || rhs.is_string())) {
    return Value::String(lhs.ToString() + rhs.ToString());
  }
  if (op == "+" || op == "-" || op == "*" || op == "/" || op == "%") {
    if (lhs.is_int() && rhs.is_int() && op != "/") {
      int64_t a = lhs.AsInt(), b = rhs.AsInt();
      if (op == "+") return Value::Int(a + b);
      if (op == "-") return Value::Int(a - b);
      if (op == "*") return Value::Int(a * b);
      if (b == 0) return Status::InvalidArgument("modulo by zero");
      return Value::Int(a % b);
    }
    NIMBLE_ASSIGN_OR_RETURN(double a, lhs.ToDouble());
    NIMBLE_ASSIGN_OR_RETURN(double b, rhs.ToDouble());
    if (op == "+") return Value::Double(a + b);
    if (op == "-") return Value::Double(a - b);
    if (op == "*") return Value::Double(a * b);
    if (op == "/") {
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
    }
    return Value::Double(std::fmod(a, b));
  }
  return Status::Unsupported("binary operator " + op);
}

Result<Value> Evaluate(const SqlExpr& expr, const Scope& scope, const Row& row,
                       const GroupContext* group) {
  switch (expr.kind) {
    case SqlExpr::Kind::kLiteral:
      return expr.literal;
    case SqlExpr::Kind::kColumnRef: {
      NIMBLE_ASSIGN_OR_RETURN(size_t slot,
                              scope.Resolve(expr.qualifier, expr.column));
      return row[slot];
    }
    case SqlExpr::Kind::kUnary: {
      if (expr.op == "ISNULL" || expr.op == "ISNOTNULL") {
        NIMBLE_ASSIGN_OR_RETURN(Value v,
                                Evaluate(*expr.args[0], scope, row, group));
        bool is_null = v.is_null();
        return Value::Bool(expr.op == "ISNULL" ? is_null : !is_null);
      }
      NIMBLE_ASSIGN_OR_RETURN(Value v,
                              Evaluate(*expr.args[0], scope, row, group));
      if (expr.op == "NOT") return Value::Bool(!v.Truthy());
      if (expr.op == "-") {
        if (v.is_null()) return Value::Null();
        if (v.is_int()) return Value::Int(-v.AsInt());
        NIMBLE_ASSIGN_OR_RETURN(double d, v.ToDouble());
        return Value::Double(-d);
      }
      return Status::Unsupported("unary operator " + expr.op);
    }
    case SqlExpr::Kind::kBinary:
      return EvaluateBinary(expr, scope, row, group);
    case SqlExpr::Kind::kFunction: {
      if (expr.op == "IN") {
        NIMBLE_ASSIGN_OR_RETURN(Value probe,
                                Evaluate(*expr.args[0], scope, row, group));
        if (probe.is_null()) return Value::Bool(false);
        for (size_t i = 1; i < expr.args.size(); ++i) {
          NIMBLE_ASSIGN_OR_RETURN(Value candidate,
                                  Evaluate(*expr.args[i], scope, row, group));
          if (!candidate.is_null() && probe == candidate) {
            return Value::Bool(true);
          }
        }
        return Value::Bool(false);
      }
      if (expr.op == "COUNT" || expr.op == "SUM" || expr.op == "AVG" ||
          expr.op == "MIN" || expr.op == "MAX") {
        if (group == nullptr || group->rows == nullptr) {
          return Status::InvalidArgument("aggregate " + expr.op +
                                         " outside aggregation context");
        }
        return EvaluateAggregate(expr, scope, *group);
      }
      if (expr.args.size() != 1) {
        return Status::InvalidArgument(expr.op + " expects one argument");
      }
      NIMBLE_ASSIGN_OR_RETURN(Value v,
                              Evaluate(*expr.args[0], scope, row, group));
      if (v.is_null()) return Value::Null();
      if (expr.op == "UPPER") return Value::String(ToUpper(v.ToString()));
      if (expr.op == "LOWER") return Value::String(ToLower(v.ToString()));
      if (expr.op == "LENGTH") {
        return Value::Int(static_cast<int64_t>(v.ToString().size()));
      }
      if (expr.op == "ABS") {
        if (v.is_int()) return Value::Int(std::llabs(v.AsInt()));
        NIMBLE_ASSIGN_OR_RETURN(double d, v.ToDouble());
        return Value::Double(std::fabs(d));
      }
      return Status::Unsupported("function " + expr.op);
    }
    case SqlExpr::Kind::kStar:
      return Status::InvalidArgument("'*' outside COUNT(*)");
  }
  return Status::Internal("unreachable");
}

/// Index-probe extraction: finds one conjunct of the WHERE clause of the
/// form `col OP literal` over `qualifier` that an index can serve.
struct IndexProbe {
  const OrderedIndex* index = nullptr;
  Value eq_key;           ///< equality probe when `is_equality`.
  bool is_equality = false;
  std::vector<Value> in_keys;  ///< IN-list probe when non-empty.
  Value lo, hi;           ///< range bounds (null = open).
  bool lo_inclusive = true, hi_inclusive = true;
};

void CollectConjuncts(const SqlExpr* expr, std::vector<const SqlExpr*>* out) {
  if (expr->kind == SqlExpr::Kind::kBinary && expr->op == "AND") {
    CollectConjuncts(expr->args[0].get(), out);
    CollectConjuncts(expr->args[1].get(), out);
  } else {
    out->push_back(expr);
  }
}

bool RefersToProbedTable(const SqlExpr& col_ref, const std::string& qualifier,
                         const std::vector<const TableSchema*>& join_schemas);

bool MatchColumnLiteral(const SqlExpr& expr, const std::string& qualifier,
                        const std::vector<const TableSchema*>& join_schemas,
                        std::string* column, std::string* op, Value* literal) {
  if (expr.kind != SqlExpr::Kind::kBinary) return false;
  const std::string& o = expr.op;
  if (o != "=" && o != "<" && o != "<=" && o != ">" && o != ">=") return false;
  const SqlExpr* col = expr.args[0].get();
  const SqlExpr* lit = expr.args[1].get();
  bool flipped = false;
  if (col->kind == SqlExpr::Kind::kLiteral &&
      lit->kind == SqlExpr::Kind::kColumnRef) {
    std::swap(col, lit);
    flipped = true;
  }
  if (col->kind != SqlExpr::Kind::kColumnRef ||
      lit->kind != SqlExpr::Kind::kLiteral) {
    return false;
  }
  if (!RefersToProbedTable(*col, qualifier, join_schemas)) return false;
  *column = col->column;
  *literal = lit->literal;
  if (!flipped) {
    *op = o;
  } else if (o == "<") {
    *op = ">";
  } else if (o == "<=") {
    *op = ">=";
  } else if (o == ">") {
    *op = "<";
  } else if (o == ">=") {
    *op = "<=";
  } else {
    *op = o;
  }
  return true;
}

/// True when `col_ref` unambiguously names a column of the probed (leftmost)
/// table: qualified with its name/alias, or unqualified with no join table
/// sharing the column name (an unqualified reference that also resolves on a
/// join table must not restrict the base scan).
bool RefersToProbedTable(const SqlExpr& col_ref, const std::string& qualifier,
                         const std::vector<const TableSchema*>& join_schemas) {
  if (!col_ref.qualifier.empty()) return col_ref.qualifier == qualifier;
  for (const TableSchema* schema : join_schemas) {
    if (schema->ColumnIndex(col_ref.column).has_value()) return false;
  }
  return true;
}

IndexProbe FindIndexProbe(const Table& table, const std::string& qualifier,
                          const SqlExpr* where,
                          const std::vector<const TableSchema*>& join_schemas) {
  IndexProbe probe;
  if (where == nullptr) return probe;
  std::vector<const SqlExpr*> conjuncts;
  CollectConjuncts(where, &conjuncts);
  // Prefer an equality probe; otherwise accumulate range bounds on one
  // indexed column.
  for (const SqlExpr* conjunct : conjuncts) {
    // IN-list probe: column IN (literals) over an indexed column.
    if (conjunct->kind == SqlExpr::Kind::kFunction && conjunct->op == "IN" &&
        conjunct->args[0]->kind == SqlExpr::Kind::kColumnRef) {
      const SqlExpr& col_ref = *conjunct->args[0];
      if (RefersToProbedTable(col_ref, qualifier, join_schemas)) {
        const OrderedIndex* index = table.FindIndexOn(col_ref.column);
        bool all_literals = true;
        for (size_t i = 1; i < conjunct->args.size(); ++i) {
          if (conjunct->args[i]->kind != SqlExpr::Kind::kLiteral) {
            all_literals = false;
            break;
          }
        }
        if (index != nullptr && all_literals) {
          probe.index = index;
          probe.in_keys.clear();
          for (size_t i = 1; i < conjunct->args.size(); ++i) {
            probe.in_keys.push_back(conjunct->args[i]->literal);
          }
          return probe;
        }
      }
    }
    std::string column, op;
    Value literal;
    if (!MatchColumnLiteral(*conjunct, qualifier, join_schemas, &column, &op,
                            &literal)) {
      continue;
    }
    const OrderedIndex* index = table.FindIndexOn(column);
    if (index == nullptr) continue;
    if (op == "=") {
      probe.index = index;
      probe.is_equality = true;
      probe.eq_key = literal;
      return probe;
    }
    if (probe.index != nullptr && probe.index != index) continue;
    probe.index = index;
    if (op == "<" || op == "<=") {
      if (probe.hi.is_null() || literal.Compare(probe.hi) < 0) {
        probe.hi = literal;
        probe.hi_inclusive = (op == "<=");
      }
    } else {
      if (probe.lo.is_null() || literal.Compare(probe.lo) > 0) {
        probe.lo = literal;
        probe.lo_inclusive = (op == ">=");
      }
    }
  }
  if (probe.index != nullptr && probe.lo.is_null() && probe.hi.is_null()) {
    probe.index = nullptr;  // matched an index but extracted no bound
  }
  return probe;
}

struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (const Value& v : vs) {
      h ^= v.Hash();
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};
struct ValueVectorEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
};

/// Finds equi-join conditions `left.col = right.col` within `condition`
/// where one side resolves in `left_scope` and the other is a column of the
/// joined table. Returns slot/column index pairs.
struct EquiJoinKeys {
  std::vector<size_t> left_slots;
  std::vector<size_t> right_columns;
  std::vector<const SqlExpr*> residual;  ///< non-equi conjuncts.
};

EquiJoinKeys ExtractEquiJoin(const SqlExpr& condition, const Scope& left_scope,
                             const std::string& right_qualifier,
                             const TableSchema& right_schema) {
  EquiJoinKeys keys;
  std::vector<const SqlExpr*> conjuncts;
  CollectConjuncts(&condition, &conjuncts);
  for (const SqlExpr* conjunct : conjuncts) {
    bool handled = false;
    if (conjunct->kind == SqlExpr::Kind::kBinary && conjunct->op == "=" &&
        conjunct->args[0]->kind == SqlExpr::Kind::kColumnRef &&
        conjunct->args[1]->kind == SqlExpr::Kind::kColumnRef) {
      const SqlExpr* a = conjunct->args[0].get();
      const SqlExpr* b = conjunct->args[1].get();
      for (int flip = 0; flip < 2 && !handled; ++flip) {
        const SqlExpr* l = flip == 0 ? a : b;
        const SqlExpr* r = flip == 0 ? b : a;
        // r must be a column of the right table; l must resolve on the left.
        if (!r->qualifier.empty() && r->qualifier != right_qualifier) continue;
        std::optional<size_t> rc = right_schema.ColumnIndex(r->column);
        if (!rc.has_value()) continue;
        if (!r->qualifier.empty() || right_qualifier.empty()) {
          // fall through; qualifier matches
        }
        if (r->qualifier.empty() && l->qualifier.empty()) {
          // Ambiguous unqualified = unqualified: require left resolution.
        }
        Result<size_t> ls = left_scope.Resolve(l->qualifier, l->column);
        if (!ls.ok()) continue;
        keys.left_slots.push_back(*ls);
        keys.right_columns.push_back(*rc);
        handled = true;
      }
    }
    if (!handled) keys.residual.push_back(conjunct);
  }
  return keys;
}

}  // namespace

Result<Value> EvaluateRowExpression(const SqlExpr& expr,
                                    const TableSchema& schema,
                                    const Row& row) {
  Scope scope;
  scope.AddTable(schema.name(), schema);
  return Evaluate(expr, scope, row, nullptr);
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match with backtracking on '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<ResultSet> ExecuteSelect(const Database& db, const SelectStmt& stmt) {
  // ---- Resolve tables -------------------------------------------------------
  const Table* base = db.GetTable(stmt.from.table);
  if (base == nullptr) {
    return Status::NotFound("no table '" + stmt.from.table + "' in database '" +
                            db.name() + "'");
  }
  Scope scope;
  scope.AddTable(stmt.from.EffectiveName(), base->schema());

  ExecStats stats;

  // ---- Base access (index-assisted when possible) ---------------------------
  std::vector<Row> current;
  // The WHERE clause is re-applied in full after joins, so restricting the
  // base scan by one of its sargable conjuncts is safe even when joins
  // follow — as long as the conjunct unambiguously binds to the base table.
  std::vector<const TableSchema*> join_schemas;
  for (const JoinClause& join : stmt.joins) {
    const Table* joined = db.GetTable(join.table.table);
    if (joined != nullptr) join_schemas.push_back(&joined->schema());
  }
  IndexProbe probe = FindIndexProbe(*base, stmt.from.EffectiveName(),
                                    stmt.where.get(), join_schemas);
  if (probe.index != nullptr) {
    stats.used_index = true;
    stats.index_name = probe.index->name();
    std::vector<size_t> row_ids;
    if (probe.is_equality) {
      row_ids = probe.index->Lookup(probe.eq_key);
    } else if (!probe.in_keys.empty()) {
      for (const Value& key : probe.in_keys) {
        std::vector<size_t> hits = probe.index->Lookup(key);
        row_ids.insert(row_ids.end(), hits.begin(), hits.end());
      }
      // A duplicated IN-list value must not duplicate rows.
      std::sort(row_ids.begin(), row_ids.end());
      row_ids.erase(std::unique(row_ids.begin(), row_ids.end()),
                    row_ids.end());
    } else {
      row_ids = probe.index->Range(probe.lo, probe.lo_inclusive, probe.hi,
                                   probe.hi_inclusive);
    }
    for (size_t id : row_ids) {
      if (base->IsLive(id)) {
        current.push_back(base->MaterializeRow(id));
        ++stats.rows_scanned;
      }
    }
  } else if (stmt.joins.empty() && stmt.where != nullptr) {
    // Single-table predicate pushdown straight over the column arrays:
    // candidates are evaluated in a reused scratch row, so rows failing the
    // WHERE clause are never materialized.
    const size_t n = base->physical_size();
    const bool dense = base->dense();
    Row scratch;
    for (size_t id = 0; id < n; ++id) {
      if (!dense && !base->IsLive(id)) continue;
      base->CopyRowInto(id, &scratch);
      ++stats.rows_scanned;
      NIMBLE_ASSIGN_OR_RETURN(Value v,
                              Evaluate(*stmt.where, scope, scratch, nullptr));
      if (v.Truthy()) current.push_back(scratch);
    }
  } else {
    const size_t n = base->physical_size();
    const bool dense = base->dense();
    for (size_t id = 0; id < n; ++id) {
      if (!dense && !base->IsLive(id)) continue;
      current.push_back(base->MaterializeRow(id));
      ++stats.rows_scanned;
    }
  }

  // ---- Joins ----------------------------------------------------------------
  for (const JoinClause& join : stmt.joins) {
    const Table* right = db.GetTable(join.table.table);
    if (right == nullptr) {
      return Status::NotFound("no table '" + join.table.table + "'");
    }
    const std::string& right_name = join.table.EffectiveName();
    EquiJoinKeys keys = ExtractEquiJoin(*join.condition, scope, right_name,
                                        right->schema());
    Scope joined_scope = scope;
    joined_scope.AddTable(right_name, right->schema());

    std::vector<Row> next;
    if (!keys.left_slots.empty()) {
      // Hash join: build on the right side, reading key columns directly —
      // build rows are identified by row id and materialized only on match.
      std::unordered_map<std::vector<Value>, std::vector<size_t>,
                         ValueVectorHash, ValueVectorEq>
          hash_table;
      right->ForEachLiveRow([&](size_t id) {
        std::vector<Value> key;
        key.reserve(keys.right_columns.size());
        for (size_t c : keys.right_columns) key.push_back(right->at(id, c));
        hash_table[std::move(key)].push_back(id);
        ++stats.rows_scanned;
      });
      const size_t right_width = right->schema().num_columns();
      for (const Row& left_row : current) {
        std::vector<Value> key;
        key.reserve(keys.left_slots.size());
        bool has_null = false;
        for (size_t s : keys.left_slots) {
          if (left_row[s].is_null()) has_null = true;
          key.push_back(left_row[s]);
        }
        size_t matches = 0;
        if (!has_null) {  // SQL semantics: null never equi-joins.
          auto it = hash_table.find(key);
          if (it != hash_table.end()) {
            for (size_t right_id : it->second) {
              Row combined = left_row;
              combined.reserve(combined.size() + right_width);
              for (size_t c = 0; c < right_width; ++c) {
                combined.push_back(right->at(right_id, c));
              }
              // Residual predicates.
              bool keep = true;
              for (const SqlExpr* residual : keys.residual) {
                NIMBLE_ASSIGN_OR_RETURN(
                    Value v,
                    Evaluate(*residual, joined_scope, combined, nullptr));
                if (!v.Truthy()) {
                  keep = false;
                  break;
                }
              }
              if (keep) {
                next.push_back(std::move(combined));
                ++matches;
              }
            }
          }
        }
        if (matches == 0 && join.left_outer) {
          Row combined = left_row;
          combined.insert(combined.end(), right_width, Value::Null());
          next.push_back(std::move(combined));
        }
      }
    } else {
      // Nested-loop join with the full ON condition; right rows are
      // appended column-wise per pair, never materialized standalone.
      std::vector<size_t> right_ids;
      right->ForEachLiveRow([&](size_t id) {
        right_ids.push_back(id);
        ++stats.rows_scanned;
      });
      const size_t right_width = right->schema().num_columns();
      for (const Row& left_row : current) {
        size_t matches = 0;
        for (size_t right_id : right_ids) {
          Row combined = left_row;
          combined.reserve(combined.size() + right_width);
          for (size_t c = 0; c < right_width; ++c) {
            combined.push_back(right->at(right_id, c));
          }
          NIMBLE_ASSIGN_OR_RETURN(
              Value v,
              Evaluate(*join.condition, joined_scope, combined, nullptr));
          if (v.Truthy()) {
            next.push_back(std::move(combined));
            ++matches;
          }
        }
        if (matches == 0 && join.left_outer) {
          Row combined = left_row;
          combined.insert(combined.end(), right_width, Value::Null());
          next.push_back(std::move(combined));
        }
      }
    }
    current = std::move(next);
    scope = std::move(joined_scope);
  }

  // ---- WHERE ----------------------------------------------------------------
  if (stmt.where != nullptr) {
    std::vector<Row> filtered;
    filtered.reserve(current.size());
    for (Row& row : current) {
      NIMBLE_ASSIGN_OR_RETURN(Value v,
                              Evaluate(*stmt.where, scope, row, nullptr));
      if (v.Truthy()) filtered.push_back(std::move(row));
    }
    current = std::move(filtered);
  }

  // ---- Projection / aggregation ---------------------------------------------
  ResultSet result;
  bool has_aggregate = false;
  for (const SelectItem& item : stmt.items) {
    if (item.expr->ContainsAggregate()) has_aggregate = true;
  }

  if (!stmt.group_by.empty() || has_aggregate) {
    // Hash aggregation.
    std::unordered_map<std::vector<Value>, std::vector<const Row*>,
                       ValueVectorHash, ValueVectorEq>
        groups;
    std::vector<std::vector<Value>> group_order;
    for (const Row& row : current) {
      std::vector<Value> key;
      key.reserve(stmt.group_by.size());
      for (const auto& g : stmt.group_by) {
        NIMBLE_ASSIGN_OR_RETURN(Value v, Evaluate(*g, scope, row, nullptr));
        key.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) group_order.push_back(key);
      it->second.push_back(&row);
    }
    // An aggregate query with no groups still yields one (possibly empty)
    // group.
    if (groups.empty() && stmt.group_by.empty()) {
      groups.try_emplace({});
      group_order.push_back({});
    }

    for (const SelectItem& item : stmt.items) {
      result.columns.push_back(!item.alias.empty() ? item.alias
                                                   : item.expr->ToSql());
    }
    for (const std::vector<Value>& key : group_order) {
      const std::vector<const Row*>& rows = groups[key];
      GroupContext group{&rows};
      const Row representative = rows.empty() ? Row(scope.slots.size())
                                              : *rows.front();
      if (stmt.having != nullptr) {
        NIMBLE_ASSIGN_OR_RETURN(
            Value keep, Evaluate(*stmt.having, scope, representative, &group));
        if (!keep.Truthy()) continue;
      }
      Row out_row;
      out_row.reserve(stmt.items.size());
      for (const SelectItem& item : stmt.items) {
        NIMBLE_ASSIGN_OR_RETURN(
            Value v, Evaluate(*item.expr, scope, representative, &group));
        out_row.push_back(std::move(v));
      }
      result.rows.push_back(std::move(out_row));
    }
  } else if (stmt.select_star) {
    for (const auto& [qualifier, column] : scope.slots) {
      result.columns.push_back(column);
    }
    result.rows = std::move(current);
  } else {
    for (const SelectItem& item : stmt.items) {
      result.columns.push_back(!item.alias.empty() ? item.alias
                                                   : item.expr->ToSql());
    }
    result.rows.reserve(current.size());
    for (const Row& row : current) {
      Row out_row;
      out_row.reserve(stmt.items.size());
      for (const SelectItem& item : stmt.items) {
        NIMBLE_ASSIGN_OR_RETURN(Value v,
                                Evaluate(*item.expr, scope, row, nullptr));
        out_row.push_back(std::move(v));
      }
      result.rows.push_back(std::move(out_row));
    }
  }

  // ---- DISTINCT --------------------------------------------------------------
  if (stmt.distinct) {
    std::unordered_map<std::vector<Value>, bool, ValueVectorHash, ValueVectorEq>
        seen;
    std::vector<Row> unique_rows;
    for (Row& row : result.rows) {
      if (seen.try_emplace(row, true).second) {
        unique_rows.push_back(std::move(row));
      }
    }
    result.rows = std::move(unique_rows);
  }

  // ---- ORDER BY ---------------------------------------------------------------
  if (!stmt.order_by.empty()) {
    // Order keys may reference output aliases or input columns. Resolve
    // against output column names first, then re-evaluate on input rows is
    // not possible post-projection — so we evaluate keys against the output
    // row via alias lookup, falling back to expression text match.
    std::vector<size_t> key_slots;
    std::vector<bool> desc;
    for (const OrderKey& key : stmt.order_by) {
      std::string key_text = key.expr->ToSql();
      std::string bare =
          key.expr->kind == SqlExpr::Kind::kColumnRef ? key.expr->column : "";
      size_t slot = result.columns.size();
      for (size_t i = 0; i < result.columns.size(); ++i) {
        if (result.columns[i] == key_text ||
            (!bare.empty() && result.columns[i] == bare)) {
          slot = i;
          break;
        }
      }
      if (slot == result.columns.size()) {
        return Status::InvalidArgument(
            "ORDER BY key '" + key_text +
            "' must appear in the select list (subset restriction)");
      }
      key_slots.push_back(slot);
      desc.push_back(key.descending);
    }
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t k = 0; k < key_slots.size(); ++k) {
                         int cmp = a[key_slots[k]].Compare(b[key_slots[k]]);
                         if (cmp != 0) return desc[k] ? cmp > 0 : cmp < 0;
                       }
                       return false;
                     });
  }

  // ---- LIMIT -------------------------------------------------------------------
  if (stmt.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(stmt.limit)) {
    result.rows.resize(static_cast<size_t>(stmt.limit));
  }

  stats.rows_returned = result.rows.size();
  result.stats = stats;
  return result;
}

}  // namespace relational
}  // namespace nimble
