#include "relational/schema.h"

namespace nimble {
namespace relational {

std::optional<size_t> TableSchema::ColumnIndex(
    const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return i;
  }
  return std::nullopt;
}

Status TableSchema::SetPrimaryKey(const std::string& column_name) {
  std::optional<size_t> idx = ColumnIndex(column_name);
  if (!idx.has_value()) {
    return Status::NotFound("primary key column '" + column_name +
                            "' not in table '" + name_ + "'");
  }
  primary_key_ = idx;
  return Status::OK();
}

Status TableSchema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()) + " for table '" + name_ + "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = columns_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("null in non-nullable column '" +
                                       col.name + "'");
      }
      continue;
    }
    bool ok = false;
    switch (col.type) {
      case ValueType::kInt:
        ok = v.is_int();
        break;
      case ValueType::kDouble:
        ok = v.is_numeric();
        break;
      case ValueType::kBool:
        ok = v.is_bool();
        break;
      case ValueType::kString:
        ok = v.is_string();
        break;
      case ValueType::kNull:
        ok = true;
        break;
    }
    if (!ok) {
      return Status::TypeError("column '" + col.name + "' expects " +
                               ValueTypeName(col.type) + ", got " +
                               ValueTypeName(v.type()));
    }
  }
  return Status::OK();
}

void TableSchema::CoerceRow(Row* row) const {
  for (size_t i = 0; i < row->size() && i < columns_.size(); ++i) {
    if (columns_[i].type == ValueType::kDouble && (*row)[i].is_int()) {
      (*row)[i] = Value::Double(static_cast<double>((*row)[i].AsInt()));
    }
  }
}

}  // namespace relational
}  // namespace nimble
