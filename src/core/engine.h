#ifndef NIMBLE_CORE_ENGINE_H_
#define NIMBLE_CORE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/operators.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/exec_context.h"
#include "core/fragmenter.h"
#include "core/partial_results.h"
#include "core/plan_cache.h"
#include "core/sql_generator.h"
#include "materialize/result_cache.h"
#include "metadata/catalog.h"
#include "sched/scheduler.h"
#include "xml/node.h"
#include "xmlql/ast.h"

namespace nimble {
namespace core {

/// Engine-wide configuration.
struct EngineOptions {
  /// Push projections/selections into SQL-capable sources. Disabling this
  /// is the E3 ablation: every relational collection is shipped whole.
  bool enable_pushdown = true;
  /// Bind joins: when the distinct join-key values from already-fetched
  /// fragments fit under `bind_join_limit`, push them as `col IN (…)`
  /// semijoin filters into SQL fragments (Adali et al., paper ref [1]).
  bool enable_bind_join = true;
  size_t bind_join_limit = 500;
  /// Fetch independent fragments (and UNION branches) concurrently on a
  /// worker pool. The report's source latency is then the max over
  /// fragments (the critical path) instead of the sum; with a RealClock
  /// the overlap is genuine wall-clock time (bench E6).
  bool parallel_fetch = true;
  /// Worker threads for this engine's fragment scheduling. 0 = share the
  /// process-wide pool (sized to the hardware) with every other engine.
  size_t worker_threads = 0;
  /// Per-query wall budget on `clock` (0 = none). Fetches, retries and
  /// backoff all stop once the deadline passes; the query fails with
  /// Timeout.
  int64_t query_deadline_micros = 0;
  /// Clock for deadlines and retry backoff (not owned; nullptr = process
  /// RealClock). Benchmarks pass their VirtualClock so backoff is charged
  /// to virtual time.
  Clock* clock = nullptr;
  /// Default availability behaviour (overridable per query).
  AvailabilityPolicy availability = AvailabilityPolicy::kFailFast;
  /// Transparent retries per fragment on transient source unavailability
  /// before the availability policy kicks in (0 = fail immediately).
  size_t fetch_retries = 0;
  /// Exponential backoff between retries: initial delay, growth factor,
  /// cap, and jitter (uniform in [0.5, 1.0) of the delay). All bounded by
  /// the query deadline.
  int64_t retry_backoff_micros = 1000;
  double retry_backoff_multiplier = 2.0;
  int64_t retry_backoff_max_micros = 256000;
  bool retry_jitter = true;
  uint64_t retry_jitter_seed = 17;
  /// Maximum depth of mediated-view expansion (cycle guard).
  int max_view_depth = 16;
  /// Rows per TupleBatch flowing between physical-algebra operators
  /// (DESIGN.md §2g). Larger batches amortize per-operator dispatch;
  /// smaller ones bound peak memory per pipeline stage. Clamped to >= 1.
  size_t batch_size = algebra::Operator::kDefaultBatchSize;
  /// Engine-side result cache byte budget (0 = disabled). Complete answers
  /// from ExecuteText are cached as frozen snapshots keyed by canonicalized
  /// query text; hits are O(1) (the snapshot is shared, not cloned) and
  /// concurrent identical misses collapse into one execution
  /// (singleflight). Entries are tagged with the sources they touched and
  /// dropped when Catalog::NotifySourceUpdated fires for one of them.
  size_t result_cache_bytes = 0;
  /// TTL for engine-cached results; <= 0 means entries never expire.
  int64_t result_cache_ttl_micros = 0;
  /// Compiled-plan cache entries (canonicalized XML-QL text → parsed AST +
  /// per-branch fragmentation); repeated queries and mediated-view
  /// expansions skip parse/fragment. 0 disables. Entries are keyed with
  /// the statistics epoch when the cost-based optimizer is on, so plans
  /// optimized under superseded stats are evicted, not served.
  size_t plan_cache_entries = 64;

  // --- Cost-based optimizer (src/opt, DESIGN.md §2h) ---------------------
  /// Drive join order, join build side and bind-join depth from catalog
  /// statistics (cardinality estimates + cost model) instead of the fixed
  /// materialized-size heuristic. Disabling this is the optimizer
  /// ablation: the pre-statistics heuristic plans verbatim, with no
  /// est_rows annotations.
  bool enable_cost_optimizer = true;
  /// Records sampled per collection by Analyze() (0 = all rows). Row
  /// counts are always exact; per-column detail comes from the sample.
  size_t analyze_sample_rows = 10000;
  /// Adaptive replanning trigger: when an estimated cardinality is off
  /// from the executor's observed row count by more than this factor (in
  /// either direction), the statistics epoch advances and cached plans
  /// re-optimize. Clamped to >= 1.
  double replan_estimate_error_factor = 10.0;
  /// Run the three-stage static-analysis pass (strict semantic analysis
  /// with catalog resolution, fragmentation verification with SQL
  /// round-trip, and operator-tree IR invariants — DESIGN.md §2f) on every
  /// compiled program, on every plan-cache hit (stale plans are evicted and
  /// recompiled), and on every built plan before it is drained. Defaults on
  /// in Debug builds; release builds opt in.
#ifdef NDEBUG
  bool verify_plans = false;
#else
  bool verify_plans = true;
#endif

  // --- Admission control & QoS (src/sched, DESIGN.md §2d) ---------------
  /// Token-based concurrency limiter: at most this many queries execute at
  /// once; the rest wait in a bounded weighted-fair admission queue. 0 =
  /// scheduler disabled (submissions execute immediately, the pre-scheduler
  /// behaviour — existing callers are untouched by default).
  size_t max_inflight_queries = 0;
  /// Byte budget over the in-flight queries' `estimated_bytes` (0 = off).
  size_t max_inflight_bytes = 0;
  /// Bounded admission queue: submissions beyond this many queued entries
  /// are shed with ResourceExhausted + a retry_after_micros hint.
  size_t queue_capacity = 64;
  /// Shed at submit when the estimated queue wait already exceeds the
  /// query deadline, and drop deadline-expired entries at dequeue instead
  /// of wasting workers on answers nobody can use.
  bool load_shedding = true;
  /// Weighted-fair share per tenant (deficit round robin): a weight-3
  /// tenant drains 3 queries per 1 of a weight-1 tenant under contention.
  std::map<std::string, uint32_t> tenant_weights;
  uint32_t default_tenant_weight = 1;
};

/// Per-query options.
struct QueryOptions {
  /// When set, overrides the engine's availability policy.
  std::optional<AvailabilityPolicy> availability;
  /// Sources that must answer even under kPartial; if one of these is
  /// down the query fails (paper §3.4: "whether and how to allow the query
  /// to specify behavior when data sources are unavailable").
  std::vector<std::string> required_sources;
  /// Cooperative cancellation: set the pointee to true (from any thread)
  /// and in-flight fetches stop at the next check; the query fails with
  /// Cancelled. Must outlive the Execute call.
  const std::atomic<bool>* cancel = nullptr;
  /// Fair-share accounting bucket for the admission scheduler ("" = the
  /// default tenant). Ignored when the scheduler is disabled.
  std::string tenant;
  /// Strict scheduler priority class: 0 dequeues before 1, and so on.
  int priority = 0;
  /// Estimated result bytes, charged against max_inflight_bytes.
  size_t estimated_bytes = 0;
};

/// What happened while executing a query: the evidence stream for the
/// E1/E3/E5/E6 experiments.
struct ExecutionReport {
  size_t result_count = 0;        ///< instantiated template instances.
  size_t rows_shipped = 0;        ///< records pulled across source wires.
  int64_t source_latency_micros = 0;  ///< max (parallel) or sum (serial).
  size_t fragments_pushed_down = 0;   ///< fragments answered via SQL.
  size_t fragments_fetched = 0;       ///< fragments answered fetch+match.
  size_t fragments_bind_joined = 0;   ///< SQL fragments with pushed IN keys.
  size_t retries = 0;                 ///< transparent fetch retries taken.
  /// Time spent in the admission queue before execution started (charged
  /// against the query deadline; 0 when the scheduler is disabled).
  int64_t queue_wait_micros = 0;
  bool pushdown_hit_index = false;
  /// True when the answer came from the engine's result cache (no source
  /// was contacted by this invocation).
  bool served_from_cache = false;
  std::vector<std::string> sources_contacted;
  CompletenessInfo completeness;
  /// Physical plan rendering; UNION programs concatenate every branch's
  /// plan under "-- branch N --" headers.
  std::string plan;
  /// The same plan annotated with per-operator execution counters
  /// ("{batches=N, rows=M}"), rendered after the plan was drained. Empty
  /// when no mediator plan ran (e.g. result-cache hits).
  std::string plan_with_stats;

  std::string Summary() const;
};

/// A query answer: the constructed XML document plus its report. When the
/// answer was served from a result cache, `document` is a *frozen* shared
/// snapshot — read it freely, but mutate only through MutableDocument().
struct QueryResult {
  NodePtr document;
  ExecutionReport report;

  /// Copy-on-write escape hatch: if `document` is a frozen cache snapshot,
  /// replaces it with a private deep copy (detaching from the cache) and
  /// returns it; otherwise returns `document` unchanged.
  NodePtr MutableDocument() {
    if (document != nullptr && document->frozen()) document = document->Clone();
    return document;
  }
};

/// The async side of `Engine::Submit`: a future-like handle for one
/// submitted query. Wait() blocks until the query completes, is shed by the
/// admission scheduler, or is cancelled; Cancel() drops a still-queued
/// query without executing it and cooperatively stops a running one.
/// Handles are shared_ptr-owned and safe to Wait/Cancel from any thread,
/// but must not outlive the engine that issued them.
class QueryHandle {
 public:
  /// Blocks until the outcome is available, then returns it. The reference
  /// stays valid for the life of the handle.
  const Result<QueryResult>& Wait();
  /// Bounded Wait: blocks at most `timeout_micros` of wall time; returns the
  /// outcome, or nullptr when the query is still running (the scatter-gather
  /// coordinator's straggler bail-out — it Cancel()s and degrades instead of
  /// stalling the whole query on one shard).
  const Result<QueryResult>* WaitFor(int64_t timeout_micros);
  bool done() const;
  /// Queued → dropped with Cancelled (drop path, never executes).
  /// Running → the execution context sees the flag at its next check.
  /// Finished → no-op.
  void Cancel();

 private:
  friend class IntegrationEngine;
  void Fulfill(Result<QueryResult> result) NIMBLE_EXCLUDES(mutex_);

  mutable Mutex mutex_{LockRank::kQueryHandle, "query_handle.latch"};
  CondVar cv_;
  bool done_ NIMBLE_GUARDED_BY(mutex_) = false;
  std::optional<Result<QueryResult>> result_ NIMBLE_GUARDED_BY(mutex_);
  std::atomic<bool> cancel_{false};
  std::shared_ptr<sched::QueryScheduler::Submission> submission_
      NIMBLE_GUARDED_BY(mutex_);
};
using QueryHandlePtr = std::shared_ptr<QueryHandle>;

/// The Nimble integration engine (paper §2.1, Figure 1): parses XML-QL,
/// fragments it by source, compiles relational fragments to SQL, runs the
/// physical-algebra plan in the mediator, and constructs XML results.
///
/// Execute/ExecuteText are safe to call from many threads at once (the
/// load balancer and the stress tests do); set_options is not — reconfigure
/// only while no queries are in flight.
class IntegrationEngine {
 public:
  /// `catalog` must outlive the engine.
  explicit IntegrationEngine(metadata::Catalog* catalog,
                             EngineOptions options = {});
  ~IntegrationEngine();

  IntegrationEngine(const IntegrationEngine&) = delete;
  IntegrationEngine& operator=(const IntegrationEngine&) = delete;

  /// Parses and executes XML-QL text (a single query or a UNION program).
  /// This is the cached hot path: the compiled-plan cache skips
  /// parse/fragment for repeated text, and — when `result_cache_bytes` is
  /// set — complete answers are served as shared snapshots with
  /// singleflight miss deduplication. Queries carrying a cancellation flag
  /// bypass the result cache (a waiter cannot cancel another query's
  /// in-flight execution).
  Result<QueryResult> ExecuteText(std::string_view xmlql_text,
                                  const QueryOptions& query_options = {});

  /// Asynchronous submit: the query goes through the admission scheduler
  /// (when `max_inflight_queries` > 0) and runs on the worker pool; the
  /// returned handle resolves to the result, a shed ResourceExhausted, a
  /// queue-drop Timeout/Cancelled, or the execution outcome. ExecuteText is
  /// Submit + Wait when the scheduler is enabled, so the two paths shed and
  /// account identically.
  QueryHandlePtr Submit(std::string xmlql_text,
                        const QueryOptions& query_options = {});

  /// Executes a parsed program (uncached: the caller owns the AST).
  /// Bypasses admission control — callers holding a raw AST manage their
  /// own concurrency.
  Result<QueryResult> Execute(const xmlql::Program& program,
                              const QueryOptions& query_options = {});

  const EngineOptions& options() const { return options_; }
  void set_options(const EngineOptions& options);
  metadata::Catalog* catalog() { return catalog_; }

  /// Runs an Analyze() pass over every registered source, sampling
  /// `analyze_sample_rows` records per collection. Bumps the statistics
  /// epoch, so cached plans re-optimize under the fresh stats.
  Status Analyze() {
    return catalog_->AnalyzeAllSources(options_.analyze_sample_rows);
  }

  /// The engine-side caches; nullptr when disabled by options.
  materialize::ResultCache* result_cache() { return result_cache_.get(); }
  PlanCache* plan_cache() { return plan_cache_.get(); }

  /// The admission scheduler; nullptr when `max_inflight_queries` is 0.
  sched::QueryScheduler* scheduler() { return scheduler_.get(); }

  /// Number of queries actually executed — result-cache hits and
  /// singleflight waiters do not count (load-balancer bookkeeping and the
  /// evidence for the singleflight tests).
  uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }

 private:
  /// The tuples produced for one fragment plus accounting, held
  /// column-major so the scan at the bottom of the mediator plan shares
  /// the columns instead of re-transposing row-major tuples.
  struct FragmentResult {
    algebra::TupleSchema schema;
    algebra::TupleBatch data;
    size_t rows_shipped = 0;
    int64_t latency_micros = 0;
    bool pushed_down = false;
    bool hit_index = false;
    bool bind_joined = false;
    std::vector<const xmlql::Condition*> consumed_conditions;
    std::string label;
    /// Catalog-based cardinality estimate for this fragment's output
    /// (< 0 = no statistics; the optimizer falls back to the materialized
    /// size).
    double est_rows = -1.0;
    /// Collection record count observed while evaluating (pre-filter;
    /// < 0 = not observable, e.g. predicates were pushed down). Feeds
    /// RecordObservedRows for cheap incremental stats upkeep.
    double base_rows = -1.0;
    /// Statistics feedback target ("" = none: views, unknown sources).
    std::string stat_source;
    std::string stat_collection;
    /// Variable → statistics-column mapping from the fragment's pattern.
    std::map<std::string, std::string> var_columns;
  };

  /// The worker pool fragment waves are scheduled on.
  ThreadPool* pool();
  /// The clock deadlines/backoff run on.
  Clock* clock();

  /// (Re)builds the plan/result caches and the catalog invalidation hook
  /// from `options_`. Called from the constructor and set_options.
  void ConfigureCaches();
  /// (Re)builds the admission scheduler from `options_` (nullptr when
  /// `max_inflight_queries` is 0).
  void ConfigureScheduler();

  /// Synchronous execution core: the pre-scheduler ExecuteText body.
  /// `queue_wait_micros` (time already spent queued) is charged against the
  /// query deadline; `handle_cancel` is the async handle's cancel flag.
  Result<QueryResult> ExecuteTextNow(std::string_view xmlql_text,
                                     const QueryOptions& query_options,
                                     int64_t queue_wait_micros,
                                     const std::atomic<bool>* handle_cancel);

  /// Compiled program for `text`: plan-cache hit or parse+fragment.
  Result<std::shared_ptr<const CompiledProgram>> GetOrCompile(
      std::string_view text);

  /// Full execution of a fragmented program (counts as a served query).
  /// `fragmentations` lines up with `program.branches` and points into it.
  Result<QueryResult> ExecuteFragmented(
      const xmlql::Program& program,
      const std::vector<Fragmentation>& fragmentations,
      const QueryOptions& query_options, int64_t queue_wait_micros = 0,
      const std::atomic<bool>* handle_cancel = nullptr);

  Result<QueryResult> ExecuteInternal(
      const xmlql::Program& program,
      const std::vector<Fragmentation>& fragmentations,
      const QueryOptions& query_options, int view_depth,
      ExecutionContext& ctx);

  /// Executes one branch into `out_root`; fills the branch-local `report`
  /// (ordered fields only — numeric counters go through `ctx`).
  /// `fragmentation` was compiled from `query` and may be shared across
  /// concurrent executions (read-only).
  Status ExecuteBranch(const xmlql::Query& query,
                       const Fragmentation& fragmentation,
                       const QueryOptions& query_options, int view_depth,
                       Node* out_root, ExecutionReport* report,
                       ExecutionContext& ctx);

  /// `bind_values` (nullable) carries complete distinct join-key sets from
  /// already-evaluated fragments for semijoin pushdown. `top_pushdown`
  /// (nullable) carries query-level ORDER BY/LIMIT when this fragment is
  /// the entire query. `report` is fragment- or branch-local; safe to call
  /// concurrently for independent fragments with distinct reports.
  Result<FragmentResult> EvaluateFragment(
      const Fragment& fragment, const QueryOptions& query_options,
      int view_depth,
      const std::map<std::string, std::vector<Value>>* bind_values,
      const TopLevelPushdown* top_pushdown, ExecutionReport* report,
      ExecutionContext& ctx);

  /// Harvests complete distinct join-key sets from `fr` for later bind
  /// joins (scalar bindings only).
  void HarvestBindValues(const FragmentResult& fr,
                         std::map<std::string, std::vector<Value>>* bind_values)
      const;

  /// Builds the join tree over materialized fragments, applying cross
  /// conditions as soon as their variables are covered (the "internal
  /// query optimizer" of §4). With `enable_cost_optimizer` the order,
  /// join build sides and est_rows annotations come from the cost-based
  /// optimizer in src/opt; otherwise the legacy greedy smallest-product
  /// heuristic with shared-variable preference runs unchanged.
  Result<std::unique_ptr<algebra::Operator>> BuildPlan(
      std::vector<FragmentResult> fragments,
      const std::vector<const xmlql::Condition*>& cross_conditions,
      const xmlql::Query& query);

  metadata::Catalog* const catalog_;
  /// Everything below down to the caches changes only inside set_options,
  /// which the class contract forbids while queries are in flight.
  // nimble-lint: unguarded(set_options contract: reconfigured only with no queries in flight)
  EngineOptions options_;
  // nimble-lint: unguarded(set_options contract: reconfigured only with no queries in flight)
  std::unique_ptr<ThreadPool> owned_pool_;  ///< when worker_threads > 0.
  /// Caches are configured at construction / set_options time (never while
  /// queries are in flight, per the set_options contract).
  // nimble-lint: unguarded(set_options contract: reconfigured only with no queries in flight)
  std::unique_ptr<PlanCache> plan_cache_;
  // nimble-lint: unguarded(set_options contract: reconfigured only with no queries in flight)
  std::unique_ptr<materialize::ResultCache> result_cache_;
  // nimble-lint: unguarded(set_options contract: reconfigured only with no queries in flight)
  uint64_t catalog_listener_token_ = 0;  ///< 0 = not subscribed.
  std::atomic<uint64_t> queries_served_{0};
  /// Unscheduled Submit tasks still running on the worker pool. The
  /// destructor drains this to zero, so an abandoned handle — e.g. a
  /// scatter-gather straggler that was cancelled and left behind — can
  /// never run its `this` capture against a destroyed engine.
  mutable Mutex inflight_mutex_{LockRank::kEngineInflight, "engine.inflight"};
  CondVar inflight_cv_;
  size_t inflight_submits_ NIMBLE_GUARDED_BY(inflight_mutex_) = 0;
  /// Declared last: destroyed first, so shutdown drains queued/in-flight
  /// queries while the pool, caches and catalog hook are still alive.
  // nimble-lint: unguarded(set_options contract: reconfigured only with no queries in flight)
  std::unique_ptr<sched::QueryScheduler> scheduler_;
};

}  // namespace core
}  // namespace nimble

#endif  // NIMBLE_CORE_ENGINE_H_
