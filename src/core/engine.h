#ifndef NIMBLE_CORE_ENGINE_H_
#define NIMBLE_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/operators.h"
#include "common/result.h"
#include "core/fragmenter.h"
#include "core/partial_results.h"
#include "core/sql_generator.h"
#include "metadata/catalog.h"
#include "xml/node.h"
#include "xmlql/ast.h"

namespace nimble {
namespace core {

/// Engine-wide configuration.
struct EngineOptions {
  /// Push projections/selections into SQL-capable sources. Disabling this
  /// is the E3 ablation: every relational collection is shipped whole.
  bool enable_pushdown = true;
  /// Bind joins: when the distinct join-key values from already-fetched
  /// fragments fit under `bind_join_limit`, push them as `col IN (…)`
  /// semijoin filters into SQL fragments (Adali et al., paper ref [1]).
  bool enable_bind_join = true;
  size_t bind_join_limit = 500;
  /// Model fragment fetches as concurrent: the report's source latency is
  /// the max over fragments instead of the sum.
  bool parallel_fetch = true;
  /// Default availability behaviour (overridable per query).
  AvailabilityPolicy availability = AvailabilityPolicy::kFailFast;
  /// Transparent retries per fragment on transient source unavailability
  /// before the availability policy kicks in (0 = fail immediately).
  size_t fetch_retries = 0;
  /// Maximum depth of mediated-view expansion (cycle guard).
  int max_view_depth = 16;
};

/// Per-query options.
struct QueryOptions {
  /// When set, overrides the engine's availability policy.
  std::optional<AvailabilityPolicy> availability;
  /// Sources that must answer even under kPartial; if one of these is
  /// down the query fails (paper §3.4: "whether and how to allow the query
  /// to specify behavior when data sources are unavailable").
  std::vector<std::string> required_sources;
};

/// What happened while executing a query: the evidence stream for the
/// E1/E3/E5/E6 experiments.
struct ExecutionReport {
  size_t result_count = 0;        ///< instantiated template instances.
  size_t rows_shipped = 0;        ///< records pulled across source wires.
  int64_t source_latency_micros = 0;  ///< max (parallel) or sum (serial).
  size_t fragments_pushed_down = 0;   ///< fragments answered via SQL.
  size_t fragments_fetched = 0;       ///< fragments answered fetch+match.
  size_t fragments_bind_joined = 0;   ///< SQL fragments with pushed IN keys.
  bool pushdown_hit_index = false;
  std::vector<std::string> sources_contacted;
  CompletenessInfo completeness;
  std::string plan;  ///< physical plan rendering of the last branch.

  std::string Summary() const;
};

/// A query answer: the constructed XML document plus its report.
struct QueryResult {
  NodePtr document;
  ExecutionReport report;
};

/// The Nimble integration engine (paper §2.1, Figure 1): parses XML-QL,
/// fragments it by source, compiles relational fragments to SQL, runs the
/// physical-algebra plan in the mediator, and constructs XML results.
class IntegrationEngine {
 public:
  /// `catalog` must outlive the engine.
  explicit IntegrationEngine(metadata::Catalog* catalog,
                             EngineOptions options = {})
      : catalog_(catalog), options_(options) {}

  IntegrationEngine(const IntegrationEngine&) = delete;
  IntegrationEngine& operator=(const IntegrationEngine&) = delete;

  /// Parses and executes XML-QL text (a single query or a UNION program).
  Result<QueryResult> ExecuteText(std::string_view xmlql_text,
                                  const QueryOptions& query_options = {});

  /// Executes a parsed program.
  Result<QueryResult> Execute(const xmlql::Program& program,
                              const QueryOptions& query_options = {});

  const EngineOptions& options() const { return options_; }
  void set_options(const EngineOptions& options) { options_ = options; }
  metadata::Catalog* catalog() { return catalog_; }

  /// Number of queries served (load-balancer bookkeeping).
  uint64_t queries_served() const { return queries_served_; }

 private:
  /// The tuples produced for one fragment plus accounting.
  struct FragmentResult {
    algebra::TupleSchema schema;
    std::vector<algebra::Tuple> tuples;
    size_t rows_shipped = 0;
    int64_t latency_micros = 0;
    bool pushed_down = false;
    bool hit_index = false;
    bool bind_joined = false;
    std::vector<const xmlql::Condition*> consumed_conditions;
    std::string label;
  };

  Result<QueryResult> ExecuteInternal(const xmlql::Program& program,
                                      const QueryOptions& query_options,
                                      int view_depth);

  /// Executes one branch into `out_root`; updates `report`.
  Status ExecuteBranch(const xmlql::Query& query,
                       const QueryOptions& query_options, int view_depth,
                       Node* out_root, ExecutionReport* report);

  /// `bind_values` (nullable) carries complete distinct join-key sets from
  /// already-evaluated fragments for semijoin pushdown. `top_pushdown`
  /// (nullable) carries query-level ORDER BY/LIMIT when this fragment is
  /// the entire query.
  Result<FragmentResult> EvaluateFragment(
      const Fragment& fragment, const QueryOptions& query_options,
      int view_depth,
      const std::map<std::string, std::vector<Value>>* bind_values,
      const TopLevelPushdown* top_pushdown, ExecutionReport* report);

  /// Builds the join tree over materialized fragments, applying cross
  /// conditions as soon as their variables are covered. Greedy smallest-
  /// first with shared-variable preference (the "internal query optimizer"
  /// of §4).
  Result<std::unique_ptr<algebra::Operator>> BuildPlan(
      std::vector<FragmentResult> fragments,
      const std::vector<const xmlql::Condition*>& cross_conditions,
      const xmlql::Query& query);

  metadata::Catalog* catalog_;
  EngineOptions options_;
  uint64_t queries_served_ = 0;
};

}  // namespace core
}  // namespace nimble

#endif  // NIMBLE_CORE_ENGINE_H_
