#include "core/exec_context.h"

#include <algorithm>

#include "core/engine.h"

namespace nimble {
namespace core {

ExecutionContext::ExecutionContext(Clock* clock, ThreadPool* pool,
                                   int64_t relative_deadline_micros,
                                   RetryPolicy retry, bool parallel_latency,
                                   const std::atomic<bool>* external_cancel,
                                   int64_t queue_wait_micros,
                                   const std::atomic<bool>* handle_cancel)
    : clock_(clock),
      pool_(pool),
      retry_(retry),
      parallel_(parallel_latency),
      queue_wait_micros_(queue_wait_micros),
      external_cancel_(external_cancel),
      handle_cancel_(handle_cancel),
      jitter_state_(retry.jitter_seed) {
  if (relative_deadline_micros > 0) {
    // Queue wait is part of the user-visible budget: a query that waited
    // 6ms of a 10ms deadline gets 4ms of execution, and one that waited it
    // all out starts expired (deadline == now). has_deadline_ carries the
    // "a deadline exists" bit so that deadline == 0 (a VirtualClock still
    // at zero) is not mistaken for "none".
    int64_t remaining =
        std::max<int64_t>(relative_deadline_micros - queue_wait_micros, 0);
    has_deadline_ = true;
    deadline_micros_ = clock_->NowMicros() + remaining;
  }
}

ExecutionContext::ExecutionContext(ExecutionContext& parent)
    : clock_(parent.clock_),
      pool_(parent.pool_),
      retry_(parent.retry_),
      parallel_(parent.parallel_),
      has_deadline_(parent.has_deadline_),
      deadline_micros_(parent.deadline_micros_),
      parent_(&parent),
      external_cancel_(parent.external_cancel_),
      handle_cancel_(parent.handle_cancel_),
      jitter_state_(parent.retry_.jitter_seed) {}

bool ExecutionContext::cancelled() const {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  if (parent_ != nullptr && parent_->cancelled()) return true;
  if (external_cancel_ != nullptr &&
      external_cancel_->load(std::memory_order_relaxed)) {
    return true;
  }
  return handle_cancel_ != nullptr &&
         handle_cancel_->load(std::memory_order_relaxed);
}

Status ExecutionContext::Check() const {
  if (cancelled()) return Status::Cancelled("query cancelled");
  if (has_deadline_ && clock_->NowMicros() >= deadline_micros_) {
    return Status::Timeout("query deadline exceeded");
  }
  return Status::OK();
}

connector::RequestContext ExecutionContext::MakeRequest(
    connector::FetchStats* call_stats) const {
  connector::RequestContext request;
  request.cancelled = &cancelled_;
  request.deadline_micros = deadline_micros_;
  request.clock = clock_;
  request.call_stats = call_stats;
  return request;
}

int64_t ExecutionContext::NextBackoffMicros(size_t attempt) {
  double delay = static_cast<double>(retry_.initial_backoff_micros);
  for (size_t i = 0; i < attempt; ++i) delay *= retry_.backoff_multiplier;
  delay = std::min(delay, static_cast<double>(retry_.max_backoff_micros));
  int64_t micros = static_cast<int64_t>(delay);
  if (retry_.jitter) {
    // splitmix64 step over a shared atomic state: lock-free and
    // deterministic per (seed, draw index), though the thread that gets a
    // given draw varies under concurrency.
    uint64_t z = jitter_state_.fetch_add(0x9E3779B97F4A7C15ULL,
                                         std::memory_order_relaxed) +
                 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    double scale = 0.5 + 0.5 * (static_cast<double>(z >> 11) *
                                (1.0 / 9007199254740992.0));
    micros = static_cast<int64_t>(static_cast<double>(micros) * scale);
  }
  if (micros < 1) micros = 1;
  if (has_deadline_ && clock_->NowMicros() + micros >= deadline_micros_) {
    return -1;
  }
  return micros;
}

void ExecutionContext::SleepForRetry(int64_t micros) {
  clock_->AdvanceMicros(micros);
  retries_.fetch_add(1, std::memory_order_relaxed);
}

void ExecutionContext::AddRetries(size_t n) {
  if (n > 0) retries_.fetch_add(n, std::memory_order_relaxed);
}

void ExecutionContext::AddRowsShipped(size_t rows) {
  rows_shipped_.fetch_add(rows, std::memory_order_relaxed);
}

void ExecutionContext::AddLatency(int64_t micros) {
  if (parallel_) {
    // Lock-free max: report the critical-path fragment, not the sum.
    int64_t seen = latency_micros_.load(std::memory_order_relaxed);
    while (micros > seen && !latency_micros_.compare_exchange_weak(
                                seen, micros, std::memory_order_relaxed)) {
    }
  } else {
    latency_micros_.fetch_add(micros, std::memory_order_relaxed);
  }
}

void ExecutionContext::AddFragment(bool pushed_down, bool hit_index,
                                   bool bind_joined) {
  if (pushed_down) {
    fragments_pushed_down_.fetch_add(1, std::memory_order_relaxed);
    if (hit_index) pushdown_hit_index_.store(true, std::memory_order_relaxed);
  } else {
    fragments_fetched_.fetch_add(1, std::memory_order_relaxed);
  }
  if (bind_joined) {
    fragments_bind_joined_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ExecutionContext::FillReport(ExecutionReport* report) const {
  report->rows_shipped = rows_shipped_.load(std::memory_order_relaxed);
  report->source_latency_micros =
      latency_micros_.load(std::memory_order_relaxed);
  report->fragments_pushed_down =
      fragments_pushed_down_.load(std::memory_order_relaxed);
  report->fragments_fetched =
      fragments_fetched_.load(std::memory_order_relaxed);
  report->fragments_bind_joined =
      fragments_bind_joined_.load(std::memory_order_relaxed);
  report->pushdown_hit_index =
      pushdown_hit_index_.load(std::memory_order_relaxed);
  report->retries = retries_.load(std::memory_order_relaxed);
  report->queue_wait_micros = queue_wait_micros_;
}

}  // namespace core
}  // namespace nimble
