#ifndef NIMBLE_CORE_EXEC_CONTEXT_H_
#define NIMBLE_CORE_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "connector/connector.h"

namespace nimble {
namespace core {

struct ExecutionReport;

/// Transparent-retry behaviour for transient source unavailability:
/// exponential backoff with optional jitter, always capped by the query
/// deadline (a retry that cannot finish before the deadline is not taken).
struct RetryPolicy {
  size_t max_retries = 0;              ///< extra attempts after the first.
  int64_t initial_backoff_micros = 1000;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_micros = 256000;
  /// Scale each delay by a uniform factor in [0.5, 1.0) so synchronized
  /// retry storms against a recovering source spread out.
  bool jitter = true;
  uint64_t jitter_seed = 17;
};

/// Per-query execution state shared by every thread working on the query:
/// the deadline, the cooperative cancellation flag, the retry policy, the
/// worker pool, and thread-safe accounting (atomic counters replacing the
/// old single-threaded ExecutionReport merging). One context is created per
/// top-level query and threaded through branch/fragment evaluation and —
/// as a connector::RequestContext — into every source call; mediated-view
/// expansion shares the parent context, so a nested view's fetches count
/// against the same deadline and the same totals.
///
/// Ordered, presentation-level report fields (sources_contacted, plan,
/// completeness) stay out of the context: they are collected per branch and
/// merged in branch order so results are deterministic under concurrency.
class ExecutionContext {
 public:
  /// `clock` drives deadlines/backoff (a VirtualClock in tests and
  /// benchmarks); `pool` runs parallel fragment waves. Both must outlive
  /// the context. `relative_deadline_micros` of 0 means no deadline;
  /// `parallel_latency` selects max-over-fragments (true) vs sum (false)
  /// latency accounting, mirroring EngineOptions::parallel_fetch.
  /// `queue_wait_micros` is time already spent in the admission queue: it
  /// is charged against the relative deadline so the user-visible budget
  /// covers queue + execution, not execution alone. A query whose wait
  /// consumed the whole budget starts already expired (Check() returns
  /// Timeout on first poll). `handle_cancel` is a second external
  /// cancellation source (the async QueryHandle's flag) checked alongside
  /// the caller's own `external_cancel`.
  ExecutionContext(Clock* clock, ThreadPool* pool,
                   int64_t relative_deadline_micros, RetryPolicy retry,
                   bool parallel_latency,
                   const std::atomic<bool>* external_cancel = nullptr,
                   int64_t queue_wait_micros = 0,
                   const std::atomic<bool>* handle_cancel = nullptr);

  /// Child context for mediated-view expansion: shares the clock, pool,
  /// retry policy, parallel flag, absolute deadline and cancellation state
  /// with `parent` but accumulates fresh counters, so a view's internal
  /// fragment counts can be folded into the parent as a single fragment
  /// while its deadline and cancellation stay query-wide.
  explicit ExecutionContext(ExecutionContext& parent);

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  Clock* clock() { return clock_; }
  ThreadPool* pool() { return pool_; }
  const RetryPolicy& retry() const { return retry_; }
  bool parallel() const { return parallel_; }

  /// Cooperative cancellation: flips the flag every in-flight fetch checks.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const;

  /// OK while the query may keep running; Cancelled or Timeout otherwise.
  Status Check() const;

  /// The context every connector call receives; `call_stats` (fragment-
  /// local, owned by the caller) receives that call's own cost.
  connector::RequestContext MakeRequest(
      connector::FetchStats* call_stats) const;

  /// Backoff before retry `attempt` (0-based): exponential, clamped,
  /// jittered. Returns -1 when the delay cannot fit before the deadline —
  /// the caller should stop retrying and surface the last error.
  int64_t NextBackoffMicros(size_t attempt);

  /// Waits out a backoff delay (a RealClock sleeps; a VirtualClock charges)
  /// and counts the retry.
  void SleepForRetry(int64_t micros);

  // --- thread-safe accounting -------------------------------------------
  void AddRowsShipped(size_t rows);
  void AddLatency(int64_t micros);  ///< max (parallel) or sum (serial).
  void AddFragment(bool pushed_down, bool hit_index, bool bind_joined);
  void AddRetries(size_t n);  ///< folds a child context's retries back in.

  /// Copies the accumulated counters into `report` (called once, after all
  /// workers for the query have finished).
  void FillReport(ExecutionReport* report) const;

 private:
  Clock* clock_;
  ThreadPool* pool_;
  RetryPolicy retry_;
  bool parallel_;
  bool has_deadline_ = false;
  int64_t deadline_micros_ = 0;  ///< absolute on clock_ when has_deadline_.
  int64_t queue_wait_micros_ = 0;  ///< admission wait, already charged.
  const ExecutionContext* parent_ = nullptr;  ///< cancellation chains up.
  const std::atomic<bool>* external_cancel_;
  const std::atomic<bool>* handle_cancel_ = nullptr;
  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> jitter_state_;

  std::atomic<size_t> rows_shipped_{0};
  std::atomic<int64_t> latency_micros_{0};
  std::atomic<size_t> fragments_pushed_down_{0};
  std::atomic<size_t> fragments_fetched_{0};
  std::atomic<size_t> fragments_bind_joined_{0};
  std::atomic<bool> pushdown_hit_index_{false};
  std::atomic<size_t> retries_{0};
};

}  // namespace core
}  // namespace nimble

#endif  // NIMBLE_CORE_EXEC_CONTEXT_H_
