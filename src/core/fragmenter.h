#ifndef NIMBLE_CORE_FRAGMENTER_H_
#define NIMBLE_CORE_FRAGMENTER_H_

#include <vector>

#include "algebra/tuple.h"
#include "xmlql/ast.h"

namespace nimble {
namespace core {

/// One per-source unit of work: a WHERE pattern plus the conditions whose
/// variables it alone binds (candidates for pushdown or early filtering).
struct Fragment {
  const xmlql::PatternClause* pattern = nullptr;
  std::vector<const xmlql::Condition*> local_conditions;
  algebra::TupleSchema schema;  ///< variables bound by this pattern.
};

/// A query split by target source (paper §2.1: "it is parsed and broken
/// into multiple fragments based on the target data sources").
struct Fragmentation {
  std::vector<Fragment> fragments;
  /// Conditions spanning fragments — evaluated in the mediator after joins.
  std::vector<const xmlql::Condition*> cross_conditions;
};

/// Splits `query` into fragments. A condition is local to a fragment iff
/// every variable it references is bound by that fragment's pattern (when
/// several fragments qualify, the first one claims it).
Fragmentation FragmentQuery(const xmlql::Query& query);

}  // namespace core
}  // namespace nimble

#endif  // NIMBLE_CORE_FRAGMENTER_H_
