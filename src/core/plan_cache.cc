#include "core/plan_cache.h"

#include <cctype>

#include "xmlql/parser.h"

namespace nimble {
namespace core {

std::string CanonicalizeQueryText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  char quote = '\0';
  bool pending_space = false;
  for (char c : text) {
    if (quote != '\0') {
      out.push_back(c);
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '"' || c == '\'') {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      quote = c;
      out.push_back(c);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(c);
  }
  return out;
}

Result<std::shared_ptr<const CompiledProgram>> CompileProgram(
    std::string_view text) {
  NIMBLE_ASSIGN_OR_RETURN(xmlql::Program program, xmlql::ParseProgram(text));
  auto compiled = std::make_shared<CompiledProgram>();
  // Move the program into its final home *before* fragmenting: fragments
  // hold pointers into the AST, which must not relocate afterwards.
  compiled->program = std::move(program);
  compiled->fragmentations.reserve(compiled->program.branches.size());
  for (const xmlql::Query& branch : compiled->program.branches) {
    compiled->fragmentations.push_back(FragmentQuery(branch));
  }
  return std::shared_ptr<const CompiledProgram>(std::move(compiled));
}

std::shared_ptr<const CompiledProgram> PlanCache::Lookup(
    const std::string& canonical_text, uint64_t stats_epoch) {
  MutexLock lock(mu_);
  auto it = entries_.find(canonical_text);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second->stats_epoch != stats_epoch) {
    // Compiled under superseded statistics: evict so the caller
    // re-optimizes under the current epoch.
    lru_.erase(it->second);
    entries_.erase(it);
    ++stats_.stats_evictions;
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->compiled;
}

Result<std::shared_ptr<const CompiledProgram>> PlanCache::GetOrCompile(
    std::string_view text, uint64_t stats_epoch) {
  std::string canonical = CanonicalizeQueryText(text);
  std::shared_ptr<const CompiledProgram> compiled =
      Lookup(canonical, stats_epoch);
  if (compiled != nullptr) return compiled;
  NIMBLE_ASSIGN_OR_RETURN(compiled, CompileProgram(text));
  Insert(canonical, compiled, stats_epoch);
  return compiled;
}

void PlanCache::Insert(const std::string& canonical_text,
                       std::shared_ptr<const CompiledProgram> compiled,
                       uint64_t stats_epoch) {
  if (max_entries_ == 0 || compiled == nullptr) return;
  MutexLock lock(mu_);
  auto it = entries_.find(canonical_text);
  if (it != entries_.end()) {
    it->second->compiled = std::move(compiled);
    it->second->stats_epoch = stats_epoch;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.insertions;
    return;
  }
  if (entries_.size() >= max_entries_) {
    ++stats_.evictions;
    entries_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{canonical_text, std::move(compiled), stats_epoch});
  entries_[canonical_text] = lru_.begin();
  ++stats_.insertions;
}

void PlanCache::Erase(const std::string& canonical_text) {
  MutexLock lock(mu_);
  auto it = entries_.find(canonical_text);
  if (it == entries_.end()) return;
  lru_.erase(it->second);
  entries_.erase(it);
  ++stats_.invalidations;
}

void PlanCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  entries_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

}  // namespace core
}  // namespace nimble
