#ifndef NIMBLE_CORE_PLAN_CACHE_H_
#define NIMBLE_CORE_PLAN_CACHE_H_

#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/fragmenter.h"
#include "xmlql/ast.h"

namespace nimble {
namespace core {

/// A parsed XML-QL program together with its per-branch fragmentations.
/// The fragmentations point into `program`, so the pair is compiled once
/// and shared immutably — a CompiledProgram is safe to execute from many
/// threads at once (execution only reads the AST).
struct CompiledProgram {
  xmlql::Program program;
  std::vector<Fragmentation> fragmentations;  ///< one per branch.
};

/// Canonical form of XML-QL text for cache keying: whitespace runs outside
/// quoted literals collapse to a single space, leading/trailing whitespace
/// is dropped. Two spellings of the same query hit the same cache slot.
std::string CanonicalizeQueryText(std::string_view text);

/// Parses and fragments `text` into an immutable CompiledProgram.
Result<std::shared_ptr<const CompiledProgram>> CompileProgram(
    std::string_view text);

/// Thread-safe LRU cache of compiled programs keyed by canonicalized query
/// text, so repeated queries (the common case under Zipf traffic and for
/// mediated-view expansion) skip parse + fragment entirely.
class PlanCache {
 public:
  /// `max_entries` of 0 disables storage (GetOrCompile still compiles).
  explicit PlanCache(size_t max_entries) : max_entries_(max_entries) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached program for `canonical_text`, or nullptr.
  /// `stats_epoch` is the caller's current statistics epoch: an entry
  /// compiled under a different epoch was optimized with superseded
  /// statistics, so it is evicted (counted in `stats_evictions`) and the
  /// caller recompiles — the cache key is effectively (text, epoch).
  std::shared_ptr<const CompiledProgram> Lookup(
      const std::string& canonical_text, uint64_t stats_epoch = 0);

  /// One-stop shop: canonicalize, look up, compile-and-insert on miss.
  Result<std::shared_ptr<const CompiledProgram>> GetOrCompile(
      std::string_view text, uint64_t stats_epoch = 0);

  void Insert(const std::string& canonical_text,
              std::shared_ptr<const CompiledProgram> compiled,
              uint64_t stats_epoch = 0);

  /// Drops one entry (no-op when absent). Used by the engine when the plan
  /// verifier rejects a cached plan that no longer matches the catalog;
  /// counted as an invalidation, not an eviction.
  void Erase(const std::string& canonical_text);

  void Clear();

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t insertions = 0;
    size_t evictions = 0;
    /// Entries dropped by Erase (verifier-rejected stale plans).
    size_t invalidations = 0;
    /// Entries dropped on Lookup because their statistics epoch was
    /// superseded (plans re-optimized under fresh stats, DESIGN.md §2h).
    size_t stats_evictions = 0;
  };
  Stats stats() const;
  size_t size() const;
  size_t max_entries() const { return max_entries_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CompiledProgram> compiled;
    uint64_t stats_epoch = 0;  ///< statistics epoch at compile time.
  };

  const size_t max_entries_;
  mutable Mutex mu_{LockRank::kPlanCache, "plan_cache.lru"};
  /// front = most recently used.
  std::list<Entry> lru_ NIMBLE_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_
      NIMBLE_GUARDED_BY(mu_);
  Stats stats_ NIMBLE_GUARDED_BY(mu_);
};

}  // namespace core
}  // namespace nimble

#endif  // NIMBLE_CORE_PLAN_CACHE_H_
