#include "core/engine.h"

#include <algorithm>
#include <set>

#include "algebra/construct.h"
#include "algebra/pattern_match.h"
#include "core/sql_generator.h"
#include "xmlql/parser.h"

namespace nimble {
namespace core {

namespace {

/// Applies bound conditions in place over a materialized tuple vector.
Result<size_t> FilterTuples(const std::vector<const xmlql::Condition*>& conds,
                            const algebra::TupleSchema& schema,
                            std::vector<algebra::Tuple>* tuples) {
  if (conds.empty()) return tuples->size();
  std::vector<algebra::BoundCondition> bound;
  bound.reserve(conds.size());
  for (const xmlql::Condition* cond : conds) {
    NIMBLE_ASSIGN_OR_RETURN(algebra::BoundCondition bc,
                            algebra::BoundCondition::Bind(*cond, schema));
    bound.push_back(bc);
  }
  std::vector<algebra::Tuple> kept;
  kept.reserve(tuples->size());
  for (algebra::Tuple& tuple : *tuples) {
    bool pass = true;
    for (const algebra::BoundCondition& bc : bound) {
      if (!bc.Evaluate(tuple)) {
        pass = false;
        break;
      }
    }
    if (pass) kept.push_back(std::move(tuple));
  }
  *tuples = std::move(kept);
  return tuples->size();
}

void AddUnique(std::vector<std::string>* list, const std::string& item) {
  if (std::find(list->begin(), list->end(), item) == list->end()) {
    list->push_back(item);
  }
}

}  // namespace

std::string ExecutionReport::Summary() const {
  std::string out = std::to_string(result_count) + " results, " +
                    std::to_string(rows_shipped) + " rows shipped, " +
                    std::to_string(source_latency_micros) + "us source time, " +
                    std::to_string(fragments_pushed_down) + " pushed / " +
                    std::to_string(fragments_fetched) + " fetched";
  out += "; " + completeness.ToString();
  return out;
}

Result<QueryResult> IntegrationEngine::ExecuteText(
    std::string_view xmlql_text, const QueryOptions& query_options) {
  NIMBLE_ASSIGN_OR_RETURN(xmlql::Program program,
                          xmlql::ParseProgram(xmlql_text));
  return Execute(program, query_options);
}

Result<QueryResult> IntegrationEngine::Execute(
    const xmlql::Program& program, const QueryOptions& query_options) {
  ++queries_served_;
  return ExecuteInternal(program, query_options, 0);
}

Result<QueryResult> IntegrationEngine::ExecuteInternal(
    const xmlql::Program& program, const QueryOptions& query_options,
    int view_depth) {
  if (view_depth > options_.max_view_depth) {
    return Status::InvalidArgument("mediated view nesting exceeds depth " +
                                   std::to_string(options_.max_view_depth));
  }
  AvailabilityPolicy policy =
      query_options.availability.value_or(options_.availability);

  QueryResult result;
  result.document = Node::Element("results");
  ExecutionReport& report = result.report;

  for (size_t branch = 0; branch < program.branches.size(); ++branch) {
    ExecutionReport branch_report;
    Status status = ExecuteBranch(program.branches[branch], query_options,
                                  view_depth, result.document.get(),
                                  &branch_report);
    // Merge accounting even for failed branches (work was done).
    report.rows_shipped += branch_report.rows_shipped;
    report.fragments_pushed_down += branch_report.fragments_pushed_down;
    report.fragments_fetched += branch_report.fragments_fetched;
    report.fragments_bind_joined += branch_report.fragments_bind_joined;
    report.pushdown_hit_index |= branch_report.pushdown_hit_index;
    if (options_.parallel_fetch) {
      report.source_latency_micros = std::max(
          report.source_latency_micros, branch_report.source_latency_micros);
    } else {
      report.source_latency_micros += branch_report.source_latency_micros;
    }
    for (const std::string& src : branch_report.sources_contacted) {
      AddUnique(&report.sources_contacted, src);
    }
    if (!branch_report.plan.empty()) report.plan = branch_report.plan;

    if (status.ok()) continue;
    if (status.code() != StatusCode::kUnavailable) return status;

    // An unavailable source. Who?
    for (const std::string& src :
         branch_report.completeness.unavailable_sources) {
      AddUnique(&report.completeness.unavailable_sources, src);
      // Required sources fail the query under any policy.
      for (const std::string& required : query_options.required_sources) {
        if (required == src) {
          return Status::Unavailable("required source '" + src +
                                     "' is unavailable");
        }
      }
    }
    if (policy == AvailabilityPolicy::kFailFast) return status;
    report.completeness.complete = false;
    report.completeness.skipped_branches.push_back(branch);
  }

  report.result_count = result.document->children().size();
  // Surface completeness on the document itself so downstream consumers
  // (lenses, devices) can display it (§3.4: "indicating to the user that
  // the results were not complete").
  result.document->SetAttribute(
      "complete", Value::Bool(report.completeness.complete));
  if (!report.completeness.complete) {
    std::string missing;
    for (size_t i = 0; i < report.completeness.unavailable_sources.size();
         ++i) {
      if (i > 0) missing += ",";
      missing += report.completeness.unavailable_sources[i];
    }
    result.document->SetAttribute("missing_sources", Value::String(missing));
  }
  return result;
}

Status IntegrationEngine::ExecuteBranch(const xmlql::Query& query,
                                        const QueryOptions& query_options,
                                        int view_depth, Node* out_root,
                                        ExecutionReport* report) {
  Fragmentation fragmentation = FragmentQuery(query);

  // Evaluation order: non-SQL fragments first so their join-key values are
  // available for bind-join pushdown into the SQL fragments that follow.
  std::vector<size_t> order;
  if (options_.enable_bind_join && options_.enable_pushdown) {
    std::vector<size_t> sql_fragments;
    for (size_t i = 0; i < fragmentation.fragments.size(); ++i) {
      const xmlql::SourceRef& ref =
          fragmentation.fragments[i].pattern->source;
      connector::Connector* source =
          ref.is_view() ? nullptr : catalog_->source(ref.source);
      bool sql_capable =
          source != nullptr && source->capabilities().supports_sql;
      (sql_capable ? sql_fragments : order).push_back(i);
    }
    order.insert(order.end(), sql_fragments.begin(), sql_fragments.end());
  } else {
    for (size_t i = 0; i < fragmentation.fragments.size(); ++i) {
      order.push_back(i);
    }
  }

  // Complete distinct join-key sets from already-evaluated fragments.
  std::map<std::string, std::vector<Value>> bind_values;

  // ORDER BY/LIMIT can ride into the source only when this fragment *is*
  // the query.
  TopLevelPushdown top;
  top.order_by = &query.order_by;
  top.limit = query.limit;
  bool top_eligible = fragmentation.fragments.size() == 1 &&
                      fragmentation.cross_conditions.empty() &&
                      !query.IsAggregation();

  std::vector<FragmentResult> fragment_results;
  fragment_results.reserve(fragmentation.fragments.size());
  for (size_t index : order) {
    const Fragment& fragment = fragmentation.fragments[index];
    Result<FragmentResult> fr = EvaluateFragment(
        fragment, query_options, view_depth,
        options_.enable_bind_join ? &bind_values : nullptr,
        top_eligible ? &top : nullptr, report);
    if (!fr.ok()) return fr.status();
    if (fr->bind_joined) ++report->fragments_bind_joined;
    // Harvest distinct values for future bind joins (scalar bindings only;
    // node bindings join by deep equality, which IN cannot express).
    if (options_.enable_bind_join) {
      for (const std::string& var : fr->schema.variables()) {
        if (bind_values.count(var) > 0) continue;
        size_t slot = *fr->schema.SlotOf(var);
        std::set<std::string> seen;
        std::vector<Value> distinct;
        bool usable = true;
        for (const algebra::Tuple& tuple : fr->tuples) {
          const algebra::Binding& binding = tuple[slot];
          if (binding.is_node()) {
            usable = false;
            break;
          }
          Value v = binding.AsScalar();
          std::string key =
              std::string(ValueTypeName(v.type())) + "\x1f" + v.ToString();
          if (seen.insert(key).second) distinct.push_back(std::move(v));
          if (distinct.size() > options_.bind_join_limit) {
            usable = false;
            break;
          }
        }
        if (usable) bind_values[var] = std::move(distinct);
      }
    }
    if (options_.parallel_fetch) {
      report->source_latency_micros =
          std::max(report->source_latency_micros, fr->latency_micros);
    } else {
      report->source_latency_micros += fr->latency_micros;
    }
    report->rows_shipped += fr->rows_shipped;
    if (fr->pushed_down) {
      ++report->fragments_pushed_down;
      report->pushdown_hit_index |= fr->hit_index;
    } else {
      ++report->fragments_fetched;
    }
    fragment_results.push_back(std::move(*fr));
  }

  Result<std::unique_ptr<algebra::Operator>> plan = BuildPlan(
      std::move(fragment_results), fragmentation.cross_conditions, query);
  if (!plan.ok()) return plan.status();
  report->plan = (*plan)->Describe();

  // Drain the plan, instantiating the CONSTRUCT template per tuple.
  NIMBLE_RETURN_IF_ERROR((*plan)->Open());
  while (true) {
    Result<std::optional<algebra::Tuple>> tuple = (*plan)->Next();
    if (!tuple.ok()) return tuple.status();
    if (!tuple->has_value()) break;
    Result<NodePtr> instance = algebra::InstantiateTemplate(
        *query.construct, (*plan)->schema(), **tuple);
    if (!instance.ok()) return instance.status();
    out_root->AddChild(std::move(*instance));
  }
  (*plan)->Close();
  return Status::OK();
}

Result<IntegrationEngine::FragmentResult> IntegrationEngine::EvaluateFragment(
    const Fragment& fragment, const QueryOptions& query_options,
    int view_depth,
    const std::map<std::string, std::vector<Value>>* bind_values,
    const TopLevelPushdown* top_pushdown, ExecutionReport* report) {
  FragmentResult out;
  const xmlql::SourceRef& source_ref = fragment.pattern->source;

  if (source_ref.is_view()) {
    // Mediated-view reference: execute the view's program recursively and
    // match this pattern against its result document (GAV expansion).
    const metadata::MediatedView* view = catalog_->view(source_ref.collection);
    if (view == nullptr) {
      return Status::NotFound("no view or source named '" +
                              source_ref.collection + "'");
    }
    NIMBLE_ASSIGN_OR_RETURN(xmlql::Program view_program,
                            xmlql::ParseProgram(view->query_text));
    Result<QueryResult> view_result =
        ExecuteInternal(view_program, query_options, view_depth + 1);
    if (!view_result.ok()) {
      if (view_result.status().code() == StatusCode::kUnavailable) {
        // Propagate which sources were down.
        for (const std::string& src : view->source_dependencies) {
          AddUnique(&report->completeness.unavailable_sources, src);
        }
      }
      return view_result.status();
    }
    // Nested incompleteness taints this query too.
    if (!view_result->report.completeness.complete) {
      report->completeness.complete = false;
      for (const std::string& src :
           view_result->report.completeness.unavailable_sources) {
        AddUnique(&report->completeness.unavailable_sources, src);
      }
    }
    report->rows_shipped += view_result->report.rows_shipped;
    out.latency_micros = view_result->report.source_latency_micros;
    for (const std::string& src : view_result->report.sources_contacted) {
      AddUnique(&report->sources_contacted, src);
    }
    out.schema = fragment.schema;
    NIMBLE_ASSIGN_OR_RETURN(
        out.tuples, algebra::MatchPattern(fragment.pattern->root,
                                          view_result->document, out.schema));
    NIMBLE_RETURN_IF_ERROR(
        FilterTuples(fragment.local_conditions, out.schema, &out.tuples)
            .status());
    out.label = "view:" + source_ref.collection;
    return out;
  }

  connector::Connector* source = catalog_->source(source_ref.source);
  if (source == nullptr) {
    return Status::NotFound("no source named '" + source_ref.source + "'");
  }
  AddUnique(&report->sources_contacted, source_ref.source);

  connector::FetchStats before = source->stats();

  // Try SQL pushdown first.
  if (options_.enable_pushdown) {
    Result<SqlTranslation> translation = TranslateFragmentToSql(
        fragment, source->capabilities(),
        /*push_predicates=*/true, bind_values, top_pushdown);
    if (translation.ok()) {
      Result<relational::ResultSet> rs = source->ExecuteSql(translation->sql);
      for (size_t attempt = 0;
           !rs.ok() && rs.status().code() == StatusCode::kUnavailable &&
           attempt < options_.fetch_retries;
           ++attempt) {
        rs = source->ExecuteSql(translation->sql);
      }
      if (!rs.ok()) {
        if (rs.status().code() == StatusCode::kUnavailable) {
          AddUnique(&report->completeness.unavailable_sources,
                    source_ref.source);
        }
        return rs.status();
      }
      algebra::TupleSchema schema(translation->variables);
      std::vector<algebra::Tuple> tuples;
      tuples.reserve(rs->rows.size());
      for (const relational::Row& row : rs->rows) {
        algebra::Tuple tuple;
        tuple.reserve(row.size());
        for (const Value& v : row) tuple.emplace_back(algebra::Binding{v});
        tuples.push_back(std::move(tuple));
      }
      // Apply local conditions the translation did not consume.
      std::vector<const xmlql::Condition*> residual;
      for (const xmlql::Condition* cond : fragment.local_conditions) {
        bool consumed = false;
        for (const xmlql::Condition* pushed : translation->pushed_conditions) {
          if (pushed == cond) {
            consumed = true;
            break;
          }
        }
        if (!consumed) residual.push_back(cond);
      }
      NIMBLE_RETURN_IF_ERROR(
          FilterTuples(residual, schema, &tuples).status());

      connector::FetchStats after = source->stats();
      out.schema = std::move(schema);
      out.tuples = std::move(tuples);
      out.rows_shipped = after.rows_shipped - before.rows_shipped;
      out.latency_micros = after.latency_micros - before.latency_micros;
      out.pushed_down = true;
      out.hit_index = translation->predicate_hits_index;
      out.bind_joined = !translation->bound_variables.empty();
      out.label = (out.bind_joined ? "sql+bind:" : "sql:") +
                  source_ref.ToString();
      return out;
    }
    // Unsupported shapes fall back to fetch+match below; real errors too —
    // the fetch path will surface them.
  }

  Result<NodePtr> tree = source->FetchCollection(source_ref.collection);
  for (size_t attempt = 0;
       !tree.ok() && tree.status().code() == StatusCode::kUnavailable &&
       attempt < options_.fetch_retries;
       ++attempt) {
    tree = source->FetchCollection(source_ref.collection);
  }
  if (!tree.ok()) {
    if (tree.status().code() == StatusCode::kUnavailable) {
      AddUnique(&report->completeness.unavailable_sources, source_ref.source);
    }
    return tree.status();
  }
  out.schema = fragment.schema;
  NIMBLE_ASSIGN_OR_RETURN(
      out.tuples,
      algebra::MatchPattern(fragment.pattern->root, *tree, out.schema));
  NIMBLE_RETURN_IF_ERROR(
      FilterTuples(fragment.local_conditions, out.schema, &out.tuples)
          .status());
  connector::FetchStats after = source->stats();
  out.rows_shipped = after.rows_shipped - before.rows_shipped;
  out.latency_micros = after.latency_micros - before.latency_micros;
  out.label = "fetch:" + source_ref.ToString();
  return out;
}

Result<std::unique_ptr<algebra::Operator>> IntegrationEngine::BuildPlan(
    std::vector<FragmentResult> fragments,
    const std::vector<const xmlql::Condition*>& cross_conditions,
    const xmlql::Query& query) {
  struct PlanEntry {
    std::unique_ptr<algebra::Operator> op;
    double size_estimate;
  };
  std::vector<PlanEntry> entries;
  entries.reserve(fragments.size());
  for (FragmentResult& fr : fragments) {
    double size = static_cast<double>(fr.tuples.size());
    entries.push_back(PlanEntry{
        std::make_unique<algebra::MaterializedScan>(
            std::move(fr.schema), std::move(fr.tuples), fr.label),
        size});
  }
  if (entries.empty()) {
    return Status::InvalidArgument("query has no patterns");
  }

  std::vector<const xmlql::Condition*> pending = cross_conditions;

  auto shares_variable = [](const algebra::Operator& a,
                            const algebra::Operator& b) {
    for (const std::string& var : a.schema().variables()) {
      if (b.schema().SlotOf(var).has_value()) return true;
    }
    return false;
  };

  while (entries.size() > 1) {
    // Pick the cheapest joinable pair; prefer pairs sharing variables.
    size_t best_i = 0, best_j = 1;
    bool best_shared = false;
    double best_cost = 0;
    bool found = false;
    for (size_t i = 0; i < entries.size(); ++i) {
      for (size_t j = i + 1; j < entries.size(); ++j) {
        bool shared = shares_variable(*entries[i].op, *entries[j].op);
        double cost = entries[i].size_estimate * entries[j].size_estimate;
        bool better = !found || (shared && !best_shared) ||
                      (shared == best_shared && cost < best_cost);
        if (better) {
          best_i = i;
          best_j = j;
          best_shared = shared;
          best_cost = cost;
          found = true;
        }
      }
    }

    PlanEntry left = std::move(entries[best_i]);
    PlanEntry right = std::move(entries[best_j]);
    entries.erase(entries.begin() + static_cast<ptrdiff_t>(best_j));
    entries.erase(entries.begin() + static_cast<ptrdiff_t>(best_i));

    std::unique_ptr<algebra::Operator> joined;
    double estimate;
    if (best_shared) {
      joined = std::make_unique<algebra::HashJoin>(std::move(left.op),
                                                   std::move(right.op));
      estimate = std::max(left.size_estimate, right.size_estimate);
    } else {
      joined = std::make_unique<algebra::NestedLoopJoin>(
          std::move(left.op), std::move(right.op),
          std::vector<algebra::BoundCondition>{});
      estimate = left.size_estimate * right.size_estimate;
    }

    // Attach any cross conditions that just became evaluable.
    std::vector<algebra::BoundCondition> newly_bound;
    std::vector<const xmlql::Condition*> still_pending;
    for (const xmlql::Condition* cond : pending) {
      bool covered = true;
      for (const std::string& var : cond->Variables()) {
        if (!joined->schema().SlotOf(var).has_value()) {
          covered = false;
          break;
        }
      }
      if (covered) {
        NIMBLE_ASSIGN_OR_RETURN(
            algebra::BoundCondition bc,
            algebra::BoundCondition::Bind(*cond, joined->schema()));
        newly_bound.push_back(bc);
      } else {
        still_pending.push_back(cond);
      }
    }
    pending = std::move(still_pending);
    if (!newly_bound.empty()) {
      joined = std::make_unique<algebra::Filter>(std::move(joined),
                                                 std::move(newly_bound));
    }
    entries.push_back(PlanEntry{std::move(joined), estimate});
  }

  std::unique_ptr<algebra::Operator> plan = std::move(entries[0].op);
  if (!pending.empty()) {
    // Single-fragment queries land here when a "cross" condition exists
    // (cannot happen via the fragmenter, but guard anyway).
    std::vector<algebra::BoundCondition> bound;
    for (const xmlql::Condition* cond : pending) {
      NIMBLE_ASSIGN_OR_RETURN(
          algebra::BoundCondition bc,
          algebra::BoundCondition::Bind(*cond, plan->schema()));
      bound.push_back(bc);
    }
    plan = std::make_unique<algebra::Filter>(std::move(plan), std::move(bound));
  }

  // Aggregation: group by the GROUP BY variables and compute the template's
  // aggregate calls. Output variables are named "<fn>_<var>" and resolved
  // by template instantiation (see algebra/construct.cc).
  if (query.IsAggregation()) {
    std::vector<std::pair<xmlql::AggregateFn, std::string>> calls;
    query.construct->CollectAggregates(&calls);
    std::vector<algebra::HashAggregate::Spec> specs;
    for (const auto& [fn, var] : calls) {
      if (!plan->schema().SlotOf(var).has_value()) {
        return Status::InvalidArgument("aggregate over unbound variable $" +
                                       var);
      }
      algebra::HashAggregate::Fn op = algebra::HashAggregate::Fn::kCount;
      switch (fn) {
        case xmlql::AggregateFn::kCount:
          op = algebra::HashAggregate::Fn::kCount;
          break;
        case xmlql::AggregateFn::kSum:
          op = algebra::HashAggregate::Fn::kSum;
          break;
        case xmlql::AggregateFn::kAvg:
          op = algebra::HashAggregate::Fn::kAvg;
          break;
        case xmlql::AggregateFn::kMin:
          op = algebra::HashAggregate::Fn::kMin;
          break;
        case xmlql::AggregateFn::kMax:
          op = algebra::HashAggregate::Fn::kMax;
          break;
      }
      specs.push_back(algebra::HashAggregate::Spec{
          op, var, std::string(xmlql::AggregateFnName(fn)) + "_" + var});
    }
    plan = std::make_unique<algebra::HashAggregate>(
        std::move(plan), query.group_by, std::move(specs));
  }

  if (!query.order_by.empty()) {
    std::vector<algebra::Sort::Key> keys;
    for (const xmlql::OrderSpec& spec : query.order_by) {
      std::optional<size_t> slot = plan->schema().SlotOf(spec.variable);
      if (!slot.has_value()) {
        return Status::InvalidArgument("ORDER BY variable $" + spec.variable +
                                       " not bound");
      }
      keys.push_back(algebra::Sort::Key{*slot, spec.descending});
    }
    plan = std::make_unique<algebra::Sort>(std::move(plan), std::move(keys));
  }
  if (query.limit >= 0) {
    plan = std::make_unique<algebra::Limit>(std::move(plan),
                                            static_cast<size_t>(query.limit));
  }
  return plan;
}

}  // namespace core
}  // namespace nimble
