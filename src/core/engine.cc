#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <set>

#include "algebra/construct.h"
#include "algebra/pattern_match.h"
#include "algebra/verifier.h"
#include "core/plan_verifier.h"
#include "core/sql_generator.h"
#include "opt/cardinality.h"
#include "opt/optimizer.h"
#include "xmlql/parser.h"

namespace nimble {
namespace core {

namespace {

/// Applies bound conditions over a fragment batch by shrinking its
/// selection vector; surviving rows stay in the shared columns, unmoved.
Result<size_t> FilterBatch(const std::vector<const xmlql::Condition*>& conds,
                           const algebra::TupleSchema& schema,
                           algebra::TupleBatch* batch) {
  if (conds.empty()) return batch->size();
  std::vector<algebra::BoundCondition> bound;
  bound.reserve(conds.size());
  for (const xmlql::Condition* cond : conds) {
    NIMBLE_ASSIGN_OR_RETURN(algebra::BoundCondition bc,
                            algebra::BoundCondition::Bind(*cond, schema));
    bound.push_back(bc);
  }
  std::vector<uint32_t> kept;
  kept.reserve(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    bool pass = true;
    for (const algebra::BoundCondition& bc : bound) {
      if (!bc.EvaluateAt(*batch, i)) {
        pass = false;
        break;
      }
    }
    if (pass) kept.push_back(static_cast<uint32_t>(batch->PhysicalRow(i)));
  }
  batch->SetSelection(std::move(kept));
  return batch->size();
}

void AddUnique(std::vector<std::string>* list, const std::string& item) {
  if (std::find(list->begin(), list->end(), item) == list->end()) {
    list->push_back(item);
  }
}

}  // namespace

std::string ExecutionReport::Summary() const {
  std::string out = std::to_string(result_count) + " results, " +
                    std::to_string(rows_shipped) + " rows shipped, " +
                    std::to_string(source_latency_micros) + "us source time, " +
                    std::to_string(fragments_pushed_down) + " pushed / " +
                    std::to_string(fragments_fetched) + " fetched";
  if (retries > 0) out += ", " + std::to_string(retries) + " retries";
  out += "; " + completeness.ToString();
  return out;
}

const Result<QueryResult>& QueryHandle::Wait() {
  MutexLock lock(mutex_);
  while (!done_) cv_.Wait(mutex_);
  return *result_;
}

const Result<QueryResult>* QueryHandle::WaitFor(int64_t timeout_micros) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_micros);
  MutexLock lock(mutex_);
  while (!done_) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return nullptr;
    cv_.WaitFor(mutex_, std::chrono::duration_cast<std::chrono::microseconds>(
                            deadline - now)
                            .count());
  }
  return &*result_;
}

bool QueryHandle::done() const {
  MutexLock lock(mutex_);
  return done_;
}

void QueryHandle::Cancel() {
  cancel_.store(true, std::memory_order_relaxed);
  std::shared_ptr<sched::QueryScheduler::Submission> submission;
  {
    MutexLock lock(mutex_);
    submission = submission_;
  }
  // Outside the lock: a successful queue-cancel fires Fulfill, which takes
  // the lock again.
  if (submission != nullptr) submission->Cancel();
}

void QueryHandle::Fulfill(Result<QueryResult> result) {
  {
    MutexLock lock(mutex_);
    if (done_) return;
    result_ = std::move(result);
    done_ = true;
  }
  cv_.NotifyAll();
}

IntegrationEngine::IntegrationEngine(metadata::Catalog* catalog,
                                     EngineOptions options)
    : catalog_(catalog), options_(options) {
  ConfigureCaches();
  ConfigureScheduler();
}

IntegrationEngine::~IntegrationEngine() {
  // Scheduled submits drain in ~QueryScheduler (declared last, destroyed
  // first). Unscheduled ones run free on the worker pool with a `this`
  // capture — a cancelled scatter-gather straggler abandons its handle
  // while the query is still executing — so wait them out before any
  // member is torn down.
  {
    MutexLock lock(inflight_mutex_);
    while (inflight_submits_ > 0) inflight_cv_.Wait(inflight_mutex_);
  }
  if (catalog_listener_token_ != 0) {
    catalog_->RemoveUpdateListener(catalog_listener_token_);
  }
}

void IntegrationEngine::ConfigureCaches() {
  plan_cache_ = options_.plan_cache_entries == 0
                    ? nullptr
                    : std::make_unique<PlanCache>(options_.plan_cache_entries);
  if (options_.result_cache_bytes == 0) {
    result_cache_.reset();
  } else {
    materialize::ResultCacheOptions cache_options;
    cache_options.max_bytes = options_.result_cache_bytes;
    cache_options.ttl_micros = options_.result_cache_ttl_micros;
    result_cache_ = std::make_unique<materialize::ResultCache>(cache_options,
                                                               clock());
  }
  // Source updates drop every cached answer that depended on the source.
  if (result_cache_ != nullptr && catalog_listener_token_ == 0) {
    catalog_listener_token_ = catalog_->AddUpdateListener(
        [this](const std::string& source_name) {
          if (result_cache_ != nullptr) {
            result_cache_->InvalidateTag(source_name);
          }
        });
  } else if (result_cache_ == nullptr && catalog_listener_token_ != 0) {
    catalog_->RemoveUpdateListener(catalog_listener_token_);
    catalog_listener_token_ = 0;
  }
}

void IntegrationEngine::set_options(const EngineOptions& options) {
  // The scheduler holds the current pool/clock: drain and drop it before
  // either can change underneath it.
  scheduler_.reset();
  options_ = options;
  if (options_.worker_threads == 0) {
    owned_pool_.reset();
  } else if (owned_pool_ == nullptr ||
             owned_pool_->size() != options_.worker_threads) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  ConfigureCaches();
  ConfigureScheduler();
}

void IntegrationEngine::ConfigureScheduler() {
  if (options_.max_inflight_queries == 0) {
    scheduler_.reset();
    return;
  }
  sched::SchedulerOptions sched_options;
  sched_options.max_inflight_queries = options_.max_inflight_queries;
  sched_options.max_inflight_bytes = options_.max_inflight_bytes;
  sched_options.queue_capacity = options_.queue_capacity;
  sched_options.load_shedding = options_.load_shedding;
  sched_options.tenant_weights = options_.tenant_weights;
  sched_options.default_tenant_weight = options_.default_tenant_weight;
  scheduler_ =
      std::make_unique<sched::QueryScheduler>(sched_options, clock(), pool());
}

ThreadPool* IntegrationEngine::pool() {
  if (options_.worker_threads == 0) return ThreadPool::Shared();
  // Engines configured at construction time never pass through
  // set_options; create the private pool on the constructor thread here.
  if (owned_pool_ == nullptr) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  return owned_pool_.get();
}

Clock* IntegrationEngine::clock() {
  if (options_.clock != nullptr) return options_.clock;
  static RealClock real_clock;
  return &real_clock;
}

Result<std::shared_ptr<const CompiledProgram>> IntegrationEngine::GetOrCompile(
    std::string_view text) {
  // With the cost-based optimizer on, the statistics epoch is part of the
  // cache key: a plan compiled under superseded stats is evicted (counted
  // as a stats_eviction) and re-optimized instead of served forever.
  const uint64_t epoch = options_.enable_cost_optimizer
                             ? catalog_->statistics().epoch()
                             : 0;
  if (!options_.verify_plans) {
    if (plan_cache_ != nullptr) return plan_cache_->GetOrCompile(text, epoch);
    return CompileProgram(text);
  }
  if (plan_cache_ == nullptr) {
    NIMBLE_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledProgram> compiled,
                            CompileProgram(text));
    NIMBLE_RETURN_IF_ERROR(VerifyCompiledProgram(*compiled, *catalog_));
    return compiled;
  }
  // Cached plans are re-verified on every hit: a plan compiled against an
  // older catalog (a collection dropped, a view redefined) is evicted and
  // recompiled instead of executed.
  std::string canonical = CanonicalizeQueryText(text);
  std::shared_ptr<const CompiledProgram> cached =
      plan_cache_->Lookup(canonical, epoch);
  if (cached != nullptr) {
    if (VerifyCompiledProgram(*cached, *catalog_).ok()) return cached;
    plan_cache_->Erase(canonical);
  }
  NIMBLE_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledProgram> compiled,
                          CompileProgram(text));
  NIMBLE_RETURN_IF_ERROR(VerifyCompiledProgram(*compiled, *catalog_));
  plan_cache_->Insert(canonical, compiled, epoch);
  return compiled;
}

Result<QueryResult> IntegrationEngine::ExecuteText(
    std::string_view xmlql_text, const QueryOptions& query_options) {
  if (scheduler_ == nullptr) {
    return ExecuteTextNow(xmlql_text, query_options, 0, nullptr);
  }
  // Through the scheduler, so synchronous callers get the same admission
  // control, fair-share accounting and shedding as async ones.
  QueryHandlePtr handle = Submit(std::string(xmlql_text), query_options);
  return handle->Wait();
}

QueryHandlePtr IntegrationEngine::Submit(std::string xmlql_text,
                                         const QueryOptions& query_options) {
  auto handle = std::make_shared<QueryHandle>();
  if (scheduler_ == nullptr) {
    // No admission control configured: run asynchronously, unqueued. The
    // inflight count keeps the destructor from tearing the engine down
    // under a task whose handle the caller abandoned.
    {
      MutexLock lock(inflight_mutex_);
      ++inflight_submits_;
    }
    pool()->Submit(
        [this, handle, text = std::move(xmlql_text), query_options] {
          handle->Fulfill(
              ExecuteTextNow(text, query_options, 0, &handle->cancel_));
          MutexLock lock(inflight_mutex_);
          if (--inflight_submits_ == 0) inflight_cv_.NotifyAll();
        });
    return handle;
  }
  sched::SubmitInfo info;
  info.tenant = query_options.tenant;
  info.priority = query_options.priority;
  info.deadline_micros = options_.query_deadline_micros;
  info.estimated_bytes = query_options.estimated_bytes;
  // Dequeue-time drop watches the handle's flag; the caller's own
  // QueryOptions::cancel still stops execution cooperatively.
  info.cancel = &handle->cancel_;
  auto submission = scheduler_->Submit(
      info,
      [this, handle, text = std::move(xmlql_text),
       query_options](int64_t queue_wait_micros) {
        handle->Fulfill(ExecuteTextNow(text, query_options, queue_wait_micros,
                                       &handle->cancel_));
      },
      [handle](const Status& status) { handle->Fulfill(status); });
  if (!submission.ok()) {
    handle->Fulfill(submission.status());
    return handle;
  }
  {
    MutexLock lock(handle->mutex_);
    handle->submission_ = *submission;
  }
  return handle;
}

Result<QueryResult> IntegrationEngine::ExecuteTextNow(
    std::string_view xmlql_text, const QueryOptions& query_options,
    int64_t queue_wait_micros, const std::atomic<bool>* handle_cancel) {
  NIMBLE_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledProgram> compiled,
                          GetOrCompile(xmlql_text));
  // Queries with a caller-owned cancellation flag bypass the result cache:
  // a singleflight waiter cannot cancel the leader's execution, and a
  // cancelled leader must not fail everyone else's identical query. (A
  // QueryHandle's cancel flag does NOT force a bypass — it always covers
  // the queued phase, and covers execution only on this uncached path;
  // cancelling mid-execution on the shared singleflight path is
  // best-effort-none for the same reason.)
  if (result_cache_ == nullptr || query_options.cancel != nullptr) {
    return ExecuteFragmented(compiled->program, compiled->fragmentations,
                             query_options, queue_wait_micros, handle_cancel);
  }

  QueryResult executed;
  bool ran = false;
  Result<ConstNodePtr> snapshot = result_cache_->LookupOrCompute(
      CanonicalizeQueryText(xmlql_text),
      [&]() -> Result<materialize::ResultCache::Computed> {
        Result<QueryResult> result =
            ExecuteFragmented(compiled->program, compiled->fragmentations,
                              query_options, queue_wait_micros, nullptr);
        if (!result.ok()) return result.status();
        executed = std::move(*result);
        ran = true;
        materialize::ResultCache::Computed computed;
        computed.document = executed.document;
        // Incomplete answers must not mask the sources' recovery.
        computed.cacheable = executed.report.completeness.complete;
        computed.tags = executed.report.sources_contacted;
        return computed;
      });
  NIMBLE_RETURN_IF_ERROR(snapshot.status());
  if (ran) {
    // The leader's document was frozen when it was published; its report is
    // the real execution report.
    // nimble-lint: frozen(zero-copy cache seam; callers mutate via QueryResult::MutableDocument which clones)
    executed.document = std::const_pointer_cast<Node>(*snapshot);
    return executed;
  }
  // Cache hit or singleflight waiter: share the frozen snapshot.
  QueryResult result;
  // nimble-lint: frozen(zero-copy cache seam; callers mutate via QueryResult::MutableDocument which clones)
  result.document = std::const_pointer_cast<Node>(*snapshot);
  result.report.result_count = result.document->children().size();
  result.report.served_from_cache = true;
  result.report.queue_wait_micros = queue_wait_micros;
  Value complete = result.document->GetAttribute("complete");
  result.report.completeness.complete = !complete.is_bool() || complete.AsBool();
  return result;
}

Result<QueryResult> IntegrationEngine::Execute(
    const xmlql::Program& program, const QueryOptions& query_options) {
  std::vector<Fragmentation> fragmentations;
  fragmentations.reserve(program.branches.size());
  for (const xmlql::Query& branch : program.branches) {
    fragmentations.push_back(FragmentQuery(branch));
  }
  if (options_.verify_plans) {
    CatalogResolver resolver(*catalog_);
    xmlql::AnalysisOptions analysis;
    analysis.resolver = &resolver;
    analysis.strict = true;
    NIMBLE_RETURN_IF_ERROR(xmlql::AnalyzeProgram(program, analysis));
    for (size_t i = 0; i < program.branches.size(); ++i) {
      NIMBLE_RETURN_IF_ERROR(VerifyFragmentation(program.branches[i],
                                                 fragmentations[i], *catalog_));
    }
  }
  return ExecuteFragmented(program, fragmentations, query_options);
}

Result<QueryResult> IntegrationEngine::ExecuteFragmented(
    const xmlql::Program& program,
    const std::vector<Fragmentation>& fragmentations,
    const QueryOptions& query_options, int64_t queue_wait_micros,
    const std::atomic<bool>* handle_cancel) {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  RetryPolicy retry;
  retry.max_retries = options_.fetch_retries;
  retry.initial_backoff_micros = options_.retry_backoff_micros;
  retry.backoff_multiplier = options_.retry_backoff_multiplier;
  retry.max_backoff_micros = options_.retry_backoff_max_micros;
  retry.jitter = options_.retry_jitter;
  retry.jitter_seed = options_.retry_jitter_seed;
  ExecutionContext ctx(clock(), pool(), options_.query_deadline_micros, retry,
                       options_.parallel_fetch, query_options.cancel,
                       queue_wait_micros, handle_cancel);
  Result<QueryResult> result =
      ExecuteInternal(program, fragmentations, query_options, 0, ctx);
  if (result.ok()) ctx.FillReport(&result->report);
  return result;
}

Result<QueryResult> IntegrationEngine::ExecuteInternal(
    const xmlql::Program& program,
    const std::vector<Fragmentation>& fragmentations,
    const QueryOptions& query_options, int view_depth, ExecutionContext& ctx) {
  if (view_depth > options_.max_view_depth) {
    return Status::InvalidArgument("mediated view nesting exceeds depth " +
                                   std::to_string(options_.max_view_depth));
  }
  AvailabilityPolicy policy =
      query_options.availability.value_or(options_.availability);

  QueryResult result;
  result.document = Node::Element("results");
  ExecutionReport& report = result.report;

  // Every branch executes into its own root with its own ordered report;
  // branches run concurrently under parallel_fetch and the outputs are
  // merged in branch order below, so the result document is deterministic.
  const size_t num_branches = program.branches.size();
  std::vector<ExecutionReport> branch_reports(num_branches);
  std::vector<NodePtr> branch_roots(num_branches);
  std::vector<Status> branch_status(num_branches, Status::OK());
  for (size_t i = 0; i < num_branches; ++i) {
    branch_roots[i] = Node::Element("results");
  }

  auto run_branch = [&](size_t i) {
    branch_status[i] =
        ExecuteBranch(program.branches[i], fragmentations[i], query_options,
                      view_depth, branch_roots[i].get(), &branch_reports[i],
                      ctx);
  };
  if (options_.parallel_fetch && num_branches > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_branches);
    for (size_t i = 0; i < num_branches; ++i) {
      tasks.push_back([&run_branch, i] { run_branch(i); });
    }
    ctx.pool()->RunParallel(std::move(tasks));
  } else {
    for (size_t i = 0; i < num_branches; ++i) run_branch(i);
  }

  for (size_t branch = 0; branch < num_branches; ++branch) {
    const ExecutionReport& branch_report = branch_reports[branch];
    // Merge ordered bookkeeping even for failed branches (work was done).
    for (const std::string& src : branch_report.sources_contacted) {
      AddUnique(&report.sources_contacted, src);
    }
    if (!branch_report.plan.empty()) {
      if (!report.plan.empty()) report.plan += "\n";
      if (num_branches > 1) {
        report.plan += "-- branch " + std::to_string(branch) + " --\n";
      }
      report.plan += branch_report.plan;
    }
    if (!branch_report.plan_with_stats.empty()) {
      if (!report.plan_with_stats.empty()) report.plan_with_stats += "\n";
      if (num_branches > 1) {
        report.plan_with_stats +=
            "-- branch " + std::to_string(branch) + " --\n";
      }
      report.plan_with_stats += branch_report.plan_with_stats;
    }

    const Status& status = branch_status[branch];
    if (status.ok()) {
      // Nested mediated-view incompleteness taints this query too.
      if (!branch_report.completeness.complete) {
        report.completeness.complete = false;
        for (const std::string& src :
             branch_report.completeness.unavailable_sources) {
          AddUnique(&report.completeness.unavailable_sources, src);
        }
      }
      for (NodePtr& child : branch_roots[branch]->TakeChildren()) {
        result.document->AddChild(std::move(child));
      }
      continue;
    }
    if (status.code() != StatusCode::kUnavailable) return status;

    // An unavailable source. Who?
    for (const std::string& src :
         branch_report.completeness.unavailable_sources) {
      AddUnique(&report.completeness.unavailable_sources, src);
      // Required sources fail the query under any policy.
      for (const std::string& required : query_options.required_sources) {
        if (required == src) {
          return Status::Unavailable("required source '" + src +
                                     "' is unavailable");
        }
      }
    }
    if (policy == AvailabilityPolicy::kFailFast) return status;
    report.completeness.complete = false;
    report.completeness.skipped_branches.push_back(branch);
  }

  report.result_count = result.document->children().size();
  // Surface completeness on the document itself so downstream consumers
  // (lenses, devices) can display it (§3.4: "indicating to the user that
  // the results were not complete").
  result.document->SetAttribute(
      "complete", Value::Bool(report.completeness.complete));
  if (!report.completeness.complete) {
    std::string missing;
    for (size_t i = 0; i < report.completeness.unavailable_sources.size();
         ++i) {
      if (i > 0) missing += ",";
      missing += report.completeness.unavailable_sources[i];
    }
    result.document->SetAttribute("missing_sources", Value::String(missing));
  }
  return result;
}

void IntegrationEngine::HarvestBindValues(
    const FragmentResult& fr,
    std::map<std::string, std::vector<Value>>* bind_values) const {
  // Distinct values for future bind joins (scalar bindings only; node
  // bindings join by deep equality, which IN cannot express).
  for (const std::string& var : fr.schema.variables()) {
    if (bind_values->count(var) > 0) continue;
    size_t slot = *fr.schema.SlotOf(var);
    std::set<std::string> seen;
    std::vector<Value> distinct;
    bool usable = true;
    for (size_t i = 0; i < fr.data.size(); ++i) {
      const algebra::Binding& binding = fr.data.binding(slot, i);
      if (binding.is_node()) {
        usable = false;
        break;
      }
      Value v = binding.AsScalar();
      std::string key =
          std::string(ValueTypeName(v.type())) + "\x1f" + v.ToString();
      if (seen.insert(key).second) distinct.push_back(std::move(v));
      if (distinct.size() > options_.bind_join_limit) {
        usable = false;
        break;
      }
    }
    if (usable) (*bind_values)[var] = std::move(distinct);
  }
}

Status IntegrationEngine::ExecuteBranch(const xmlql::Query& query,
                                        const Fragmentation& fragmentation,
                                        const QueryOptions& query_options,
                                        int view_depth, Node* out_root,
                                        ExecutionReport* report,
                                        ExecutionContext& ctx) {
  const size_t num_fragments = fragmentation.fragments.size();

  // Dependency-aware waves: fragments that can *consume* bind-join values
  // (SQL-capable sources, when pushdown and bind joins are both on) form a
  // sequential chain evaluated after the independent wave, so every chain
  // fragment sees the join-key sets of everything before it — the same
  // dataflow the old serial loop produced. Everything else is independent
  // and fetched concurrently under parallel_fetch.
  std::vector<size_t> independent;
  std::vector<size_t> chained;
  if (options_.enable_bind_join && options_.enable_pushdown) {
    for (size_t i = 0; i < num_fragments; ++i) {
      const xmlql::SourceRef& ref = fragmentation.fragments[i].pattern->source;
      connector::Connector* source =
          ref.is_view() ? nullptr : catalog_->source(ref.source);
      bool sql_capable =
          source != nullptr && source->capabilities().supports_sql;
      (sql_capable ? chained : independent).push_back(i);
    }
  } else {
    for (size_t i = 0; i < num_fragments; ++i) independent.push_back(i);
  }

  // Complete distinct join-key sets from already-evaluated fragments.
  std::map<std::string, std::vector<Value>> bind_values;

  // ORDER BY/LIMIT can ride into the source only when this fragment *is*
  // the query.
  TopLevelPushdown top;
  top.order_by = &query.order_by;
  top.limit = query.limit;
  bool top_eligible = num_fragments == 1 &&
                      fragmentation.cross_conditions.empty() &&
                      !query.IsAggregation();

  std::vector<std::optional<FragmentResult>> slots(num_fragments);
  std::vector<ExecutionReport> fragment_reports(num_fragments);
  std::vector<Status> fragment_status(num_fragments, Status::OK());

  auto evaluate = [&](size_t index,
                      const std::map<std::string, std::vector<Value>>* bind) {
    Result<FragmentResult> fr = EvaluateFragment(
        fragmentation.fragments[index], query_options, view_depth, bind,
        top_eligible ? &top : nullptr, &fragment_reports[index], ctx);
    if (fr.ok()) {
      slots[index] = std::move(*fr);
    } else {
      fragment_status[index] = fr.status();
    }
  };

  // Wave 1: independent fragments, concurrently when enabled. They consume
  // no bind values (none exist yet), so evaluation order cannot matter.
  if (options_.parallel_fetch && independent.size() > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(independent.size());
    for (size_t index : independent) {
      tasks.push_back([&evaluate, index] { evaluate(index, nullptr); });
    }
    ctx.pool()->RunParallel(std::move(tasks));
  } else {
    for (size_t index : independent) {
      evaluate(index, options_.enable_bind_join ? &bind_values : nullptr);
    }
  }
  // Harvest in index order so the bind-value sets (and therefore the SQL
  // the chain generates) are deterministic under concurrency.
  if (options_.enable_bind_join) {
    for (size_t index : independent) {
      if (slots[index].has_value()) {
        HarvestBindValues(*slots[index], &bind_values);
      }
    }
  }

  bool wave_failed = false;
  for (size_t index : independent) {
    if (!fragment_status[index].ok()) {
      wave_failed = true;
      break;
    }
  }

  // Wave 2: the bind-join chain, sequential by construction.
  if (!wave_failed) {
    for (size_t index : chained) {
      evaluate(index, options_.enable_bind_join ? &bind_values : nullptr);
      if (!fragment_status[index].ok()) break;
      if (options_.enable_bind_join) {
        HarvestBindValues(*slots[index], &bind_values);
      }
    }
  }

  // Merge fragment-local ordered bookkeeping (sources contacted, nested
  // completeness) in evaluation order — including failed fragments, whose
  // unavailable-source lists drive the availability policy upstream.
  std::vector<size_t> order = independent;
  order.insert(order.end(), chained.begin(), chained.end());
  for (size_t index : order) {
    const ExecutionReport& fragment_report = fragment_reports[index];
    for (const std::string& src : fragment_report.sources_contacted) {
      AddUnique(&report->sources_contacted, src);
    }
    if (!fragment_report.completeness.complete) {
      report->completeness.complete = false;
    }
    for (const std::string& src :
         fragment_report.completeness.unavailable_sources) {
      AddUnique(&report->completeness.unavailable_sources, src);
    }
  }
  for (size_t index : order) {
    if (!fragment_status[index].ok()) return fragment_status[index];
  }

  std::vector<FragmentResult> fragment_results;
  fragment_results.reserve(num_fragments);
  for (size_t index : order) {
    fragment_results.push_back(std::move(*slots[index]));
  }

  // Adaptive feedback, scan level: feed observed collection sizes back
  // into the catalog. RecordObservedRows advances the stats epoch only
  // when a previously recorded row count was off by more than the replan
  // factor, so cached plans re-optimize exactly when the data moved —
  // self-limiting, because the update also corrects the count.
  if (options_.enable_cost_optimizer) {
    metadata::StatisticsCatalog& stats = catalog_->statistics();
    const double factor =
        std::max(options_.replan_estimate_error_factor, 1.0);
    for (const FragmentResult& fr : fragment_results) {
      if (fr.stat_source.empty() || fr.base_rows < 0.0) continue;
      stats.RecordObservedRows(fr.stat_source, fr.stat_collection,
                               fr.base_rows, factor);
    }
  }

  Result<std::unique_ptr<algebra::Operator>> plan = BuildPlan(
      std::move(fragment_results), fragmentation.cross_conditions, query);
  if (!plan.ok()) return plan.status();
  (*plan)->SetBatchSize(options_.batch_size);
  // Thread the deadline/cancel probe through the whole operator tree so a
  // cancelled or timed-out query stops draining mid-batch instead of running
  // the plan to completion (ctx outlives the drain loop below).
  (*plan)->SetCancelProbe([&ctx] { return ctx.Check(); });
  report->plan = (*plan)->Describe();

  if (options_.verify_plans) {
    // IR invariants over the freshly built tree, then I10: the root schema
    // must supply everything the CONSTRUCT template consumes (for
    // aggregations, the grouping keys plus the "<fn>_<var>" outputs).
    NIMBLE_RETURN_IF_ERROR(algebra::VerifyPlan(**plan));
    std::vector<std::string> required;
    if (query.IsAggregation()) {
      query.construct->CollectNonAggregateVariables(&required);
      std::vector<std::pair<xmlql::AggregateFn, std::string>> calls;
      query.construct->CollectAggregates(&calls);
      for (const auto& [fn, var] : calls) {
        required.push_back(std::string(xmlql::AggregateFnName(fn)) + "_" +
                           var);
      }
    } else {
      query.construct->CollectVariables(&required);
    }
    NIMBLE_RETURN_IF_ERROR(
        algebra::VerifyPlanProducesVariables(**plan, required));
  }

  // Drain the plan batch-at-a-time, instantiating the CONSTRUCT template
  // per result row.
  NIMBLE_RETURN_IF_ERROR((*plan)->Open());
  size_t root_rows = 0;
  while (true) {
    Result<std::optional<algebra::TupleBatch>> batch = (*plan)->NextBatch();
    if (!batch.ok()) return batch.status();
    if (!(*batch).has_value()) break;
    root_rows += (*batch)->size();
    for (size_t i = 0; i < (*batch)->size(); ++i) {
      Result<NodePtr> instance = algebra::InstantiateTemplate(
          *query.construct, (*plan)->schema(), (*batch)->MaterializeTuple(i));
      if (!instance.ok()) return instance.status();
      out_root->AddChild(std::move(*instance));
    }
  }
  (*plan)->Close();
  // Counters survive Close(); render the executed plan with per-operator
  // batch/row production (and est_rows annotations) for EXPLAIN.
  report->plan_with_stats = (*plan)->DescribeWithStats();
  // Adaptive feedback, join level: a root estimate off by more than the
  // replan factor advances the stats epoch, evicting this query's cached
  // plan so the next execution re-optimizes. LIMIT truncates and
  // aggregation collapses the output, so those comparisons would be false
  // positives and are skipped.
  if (options_.enable_cost_optimizer && (*plan)->has_estimated_rows() &&
      query.limit < 0 && !query.IsAggregation()) {
    const double factor =
        std::max(options_.replan_estimate_error_factor, 1.0);
    double est = std::max((*plan)->estimated_rows(), 1.0);
    double actual = std::max(static_cast<double>(root_rows), 1.0);
    if (est > actual * factor || actual > est * factor) {
      catalog_->statistics().BumpEpoch();
    }
  }
  return Status::OK();
}

Result<IntegrationEngine::FragmentResult> IntegrationEngine::EvaluateFragment(
    const Fragment& fragment, const QueryOptions& query_options,
    int view_depth,
    const std::map<std::string, std::vector<Value>>* bind_values,
    const TopLevelPushdown* top_pushdown, ExecutionReport* report,
    ExecutionContext& ctx) {
  // External cancellation and deadlines are authoritative here; the
  // connector-level Admit check is a best-effort second line.
  NIMBLE_RETURN_IF_ERROR(ctx.Check());

  FragmentResult out;
  const xmlql::SourceRef& source_ref = fragment.pattern->source;

  if (source_ref.is_view()) {
    // Mediated-view reference: execute the view's program recursively and
    // match this pattern against its result document (GAV expansion). The
    // child context shares the deadline, cancellation flag and pool but
    // accumulates its own counters, which this fragment then reports as
    // its cost — the view behaves like one (fetched) fragment upstream.
    const metadata::MediatedView* view = catalog_->view(source_ref.collection);
    if (view == nullptr) {
      return Status::NotFound("no view or source named '" +
                              source_ref.collection + "'");
    }
    // The plan cache makes repeated view expansion skip parse+fragment.
    NIMBLE_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledProgram> view_plan,
                            GetOrCompile(view->query_text));
    ExecutionContext view_ctx(ctx);
    Result<QueryResult> view_result =
        ExecuteInternal(view_plan->program, view_plan->fragmentations,
                        query_options, view_depth + 1, view_ctx);
    ExecutionReport nested;
    view_ctx.FillReport(&nested);
    if (!view_result.ok()) {
      if (view_result.status().code() == StatusCode::kUnavailable) {
        // Propagate which sources were down.
        for (const std::string& src : view->source_dependencies) {
          AddUnique(&report->completeness.unavailable_sources, src);
        }
      }
      return view_result.status();
    }
    // Nested incompleteness taints this query too.
    if (!view_result->report.completeness.complete) {
      report->completeness.complete = false;
      for (const std::string& src :
           view_result->report.completeness.unavailable_sources) {
        AddUnique(&report->completeness.unavailable_sources, src);
      }
    }
    for (const std::string& src : view_result->report.sources_contacted) {
      AddUnique(&report->sources_contacted, src);
    }
    ctx.AddRowsShipped(nested.rows_shipped);
    ctx.AddLatency(nested.source_latency_micros);
    ctx.AddRetries(nested.retries);
    ctx.AddFragment(/*pushed_down=*/false, /*hit_index=*/false,
                    /*bind_joined=*/false);
    out.latency_micros = nested.source_latency_micros;
    out.rows_shipped = nested.rows_shipped;
    out.schema = fragment.schema;
    NIMBLE_ASSIGN_OR_RETURN(
        std::vector<algebra::Tuple> matched,
        algebra::MatchPattern(fragment.pattern->root, view_result->document,
                              out.schema));
    out.data = algebra::TupleBatch::FromTuples(out.schema.size(), matched);
    NIMBLE_RETURN_IF_ERROR(
        FilterBatch(fragment.local_conditions, out.schema, &out.data)
            .status());
    out.label = "view:" + source_ref.collection;
    return out;
  }

  connector::Connector* source = catalog_->source(source_ref.source);
  if (source == nullptr) {
    return Status::NotFound("no source named '" + source_ref.source + "'");
  }
  AddUnique(&report->sources_contacted, source_ref.source);

  // Catalog statistics for this fragment: the variable→column mapping, the
  // cardinality estimate after local predicates, and the feedback target
  // for executor-observed row counts (DESIGN.md §2h).
  std::shared_ptr<const metadata::CollectionStats> col_stats;
  if (options_.enable_cost_optimizer) {
    out.stat_source = source_ref.source;
    out.stat_collection = source_ref.collection;
    out.var_columns = opt::VariableColumns(fragment.pattern->root);
    col_stats = catalog_->statistics().Get(source_ref.source,
                                           source_ref.collection);
    if (col_stats != nullptr) {
      out.est_rows = opt::EstimateFragmentRows(*col_stats, out.var_columns,
                                               fragment.local_conditions);
    }
  }

  // Per-source pushdown depth: a bind join whose IN list already covers
  // most of the target column's distinct values prunes almost nothing but
  // still pays translation + shipping, so the cost model drops it — unless
  // the source has a secondary index on the column and probing it once per
  // key is still cheaper than the full scan the drop would force
  // (index-nested-loop alternative; the pushed SQL's IN list becomes index
  // probes on the source side).
  const std::map<std::string, std::vector<Value>>* effective_bind =
      bind_values;
  std::map<std::string, std::vector<Value>> gated_bind;
  if (bind_values != nullptr && col_stats != nullptr) {
    opt::CostModel cost_model;
    bool dropped = false;
    for (const auto& [var, values] : *bind_values) {
      auto it = out.var_columns.find(var);
      const metadata::ColumnStats* column =
          it != out.var_columns.end() ? col_stats->column(it->second)
                                      : nullptr;
      if (column != nullptr &&
          !cost_model.UseBindJoin(values.size(), column->distinct())) {
        const bool has_index = source->capabilities().HasIndexOn(
            source_ref.collection, column->name);
        if (!cost_model.UseIndexNestedLoop(
                values.size(), static_cast<double>(col_stats->row_count),
                has_index)) {
          dropped = true;
          continue;
        }
      }
      gated_bind.emplace(var, values);
    }
    if (dropped) effective_bind = &gated_bind;
  }

  // This fragment's own wire cost, attributed by the connector per call
  // (cumulative connector counters cannot be diffed once fetches overlap).
  connector::FetchStats call_stats;
  connector::RequestContext request = ctx.MakeRequest(&call_stats);

  // Transparent retries on transient unavailability: exponential backoff
  // with jitter, never past the deadline (§3.4 — mask blips before the
  // availability policy has to get involved).
  auto with_retries = [&](auto call) {
    auto result = call();
    for (size_t attempt = 0; !result.ok() &&
                             result.status().code() == StatusCode::kUnavailable &&
                             attempt < ctx.retry().max_retries;
         ++attempt) {
      if (!ctx.Check().ok()) break;
      int64_t backoff = ctx.NextBackoffMicros(attempt);
      if (backoff < 0) break;  // the delay cannot fit before the deadline
      ctx.SleepForRetry(backoff);
      result = call();
    }
    return result;
  };

  // Try SQL pushdown first.
  if (options_.enable_pushdown) {
    Result<SqlTranslation> translation = TranslateFragmentToSql(
        fragment, source->capabilities(),
        /*push_predicates=*/true, effective_bind, top_pushdown);
    if (translation.ok()) {
      Result<relational::ResultSet> rs = with_retries(
          [&] { return source->ExecuteSql(translation->sql, request); });
      if (!rs.ok()) {
        if (rs.status().code() == StatusCode::kUnavailable) {
          AddUnique(&report->completeness.unavailable_sources,
                    source_ref.source);
        }
        return rs.status();
      }
      algebra::TupleSchema schema(translation->variables);
      // Transpose the shipped rows straight into batch columns (moving the
      // values) — the plan's scan then serves slices of these columns.
      algebra::TupleBatch data(schema.size());
      data.Reserve(rs->rows.size());
      for (relational::Row& row : rs->rows) {
        const size_t n = std::min(schema.size(), row.size());
        for (size_t c = 0; c < n; ++c) {
          data.MutableColumn(c).push_back(algebra::Binding{std::move(row[c])});
        }
        data.SetNumRows(data.num_rows() + 1);
      }
      // Apply local conditions the translation did not consume.
      std::vector<const xmlql::Condition*> residual;
      for (const xmlql::Condition* cond : fragment.local_conditions) {
        bool consumed = false;
        for (const xmlql::Condition* pushed : translation->pushed_conditions) {
          if (pushed == cond) {
            consumed = true;
            break;
          }
        }
        if (!consumed) residual.push_back(cond);
      }
      NIMBLE_RETURN_IF_ERROR(FilterBatch(residual, schema, &data).status());

      out.schema = std::move(schema);
      out.data = std::move(data);
      out.rows_shipped = call_stats.rows_shipped;
      out.latency_micros = call_stats.latency_micros;
      out.pushed_down = true;
      out.hit_index = translation->predicate_hits_index;
      out.bind_joined = !translation->bound_variables.empty();
      if (out.est_rows >= 0.0 && col_stats != nullptr &&
          effective_bind != nullptr) {
        // Pushed IN lists act like index lookups: scale the estimate by
        // the fraction of the column's key domain they select.
        for (const std::string& var : translation->bound_variables) {
          auto bv = effective_bind->find(var);
          auto vc = out.var_columns.find(var);
          if (bv == effective_bind->end() || vc == out.var_columns.end()) {
            continue;
          }
          const metadata::ColumnStats* column = col_stats->column(vc->second);
          if (column == nullptr) continue;
          double coverage =
              static_cast<double>(bv->second.size()) / column->distinct();
          if (coverage < 1.0) out.est_rows *= coverage;
        }
      }
      // The collection's record count is only observable when nothing
      // row-reducing was folded into the source-side SQL (a pushed ORDER
      // BY reorders but keeps every record).
      if (translation->pushed_conditions.empty() &&
          translation->bound_variables.empty() && !translation->limit_pushed) {
        out.base_rows = static_cast<double>(out.data.num_rows());
      }
      out.label = (out.bind_joined ? "sql+bind:" : "sql:") +
                  source_ref.ToString();
      ctx.AddRowsShipped(out.rows_shipped);
      ctx.AddLatency(out.latency_micros);
      ctx.AddFragment(out.pushed_down, out.hit_index, out.bind_joined);
      return out;
    }
    // Unsupported shapes fall back to fetch+match below; real errors too —
    // the fetch path will surface them.
  }

  Result<NodePtr> tree = with_retries(
      [&] { return source->FetchCollection(source_ref.collection, request); });
  if (!tree.ok()) {
    if (tree.status().code() == StatusCode::kUnavailable) {
      AddUnique(&report->completeness.unavailable_sources, source_ref.source);
    }
    return tree.status();
  }
  out.schema = fragment.schema;
  // The whole collection crossed the wire: its record count is the exact
  // row count for statistics upkeep.
  out.base_rows = static_cast<double>((*tree)->children().size());
  NIMBLE_ASSIGN_OR_RETURN(
      std::vector<algebra::Tuple> matched,
      algebra::MatchPattern(fragment.pattern->root, *tree, out.schema));
  out.data = algebra::TupleBatch::FromTuples(out.schema.size(), matched);
  NIMBLE_RETURN_IF_ERROR(
      FilterBatch(fragment.local_conditions, out.schema, &out.data).status());
  out.rows_shipped = call_stats.rows_shipped;
  out.latency_micros = call_stats.latency_micros;
  out.label = "fetch:" + source_ref.ToString();
  ctx.AddRowsShipped(out.rows_shipped);
  ctx.AddLatency(out.latency_micros);
  ctx.AddFragment(out.pushed_down, out.hit_index, out.bind_joined);
  return out;
}

Result<std::unique_ptr<algebra::Operator>> IntegrationEngine::BuildPlan(
    std::vector<FragmentResult> fragments,
    const std::vector<const xmlql::Condition*>& cross_conditions,
    const xmlql::Query& query) {
  const bool cost_based = options_.enable_cost_optimizer;
  std::vector<opt::JoinInput> inputs;
  inputs.reserve(fragments.size());
  for (FragmentResult& fr : fragments) {
    opt::JoinInput input;
    input.actual_rows = static_cast<double>(fr.data.size());
    input.est_rows = cost_based ? fr.est_rows : -1.0;
    if (cost_based) {
      // Distinct counts per variable: catalog sketches when the variable
      // maps to an analyzed column, else a KMV sketch over the
      // materialized batch (views, nested bindings). Capped by this
      // input's cardinality so join selectivities stay consistent.
      std::shared_ptr<const metadata::CollectionStats> cs;
      if (!fr.stat_source.empty()) {
        cs = catalog_->statistics().Get(fr.stat_source, fr.stat_collection);
      }
      const double cap = input.est_rows >= 0.0
                             ? std::max(input.est_rows, 1.0)
                             : std::max(input.actual_rows, 1.0);
      for (const std::string& var : fr.schema.variables()) {
        const metadata::ColumnStats* column = nullptr;
        auto it = fr.var_columns.find(var);
        if (cs != nullptr && it != fr.var_columns.end()) {
          column = cs->column(it->second);
        }
        double ndv = column != nullptr
                         ? column->distinct()
                         : opt::ColumnDistinctEstimate(
                               fr.data, *fr.schema.SlotOf(var));
        input.var_ndv[var] = std::min(ndv, cap);
      }
    }
    input.op = std::make_unique<algebra::MaterializedScan>(
        std::move(fr.schema), std::move(fr.data), fr.label);
    inputs.push_back(std::move(input));
  }

  NIMBLE_ASSIGN_OR_RETURN(
      opt::JoinTreeResult tree,
      opt::BuildJoinTree(std::move(inputs), cross_conditions,
                         opt::CostModel{}, cost_based));
  std::unique_ptr<algebra::Operator> plan = std::move(tree.root);
  double est = tree.est_rows;

  // Aggregation: group by the GROUP BY variables and compute the template's
  // aggregate calls. Output variables are named "<fn>_<var>" and resolved
  // by template instantiation (see algebra/construct.cc).
  if (query.IsAggregation()) {
    std::vector<std::pair<xmlql::AggregateFn, std::string>> calls;
    query.construct->CollectAggregates(&calls);
    std::vector<algebra::HashAggregate::Spec> specs;
    for (const auto& [fn, var] : calls) {
      if (!plan->schema().SlotOf(var).has_value()) {
        return Status::InvalidArgument("aggregate over unbound variable $" +
                                       var);
      }
      algebra::HashAggregate::Fn op = algebra::HashAggregate::Fn::kCount;
      switch (fn) {
        case xmlql::AggregateFn::kCount:
          op = algebra::HashAggregate::Fn::kCount;
          break;
        case xmlql::AggregateFn::kSum:
          op = algebra::HashAggregate::Fn::kSum;
          break;
        case xmlql::AggregateFn::kAvg:
          op = algebra::HashAggregate::Fn::kAvg;
          break;
        case xmlql::AggregateFn::kMin:
          op = algebra::HashAggregate::Fn::kMin;
          break;
        case xmlql::AggregateFn::kMax:
          op = algebra::HashAggregate::Fn::kMax;
          break;
      }
      specs.push_back(algebra::HashAggregate::Spec{
          op, var, std::string(xmlql::AggregateFnName(fn)) + "_" + var});
    }
    plan = std::make_unique<algebra::HashAggregate>(
        std::move(plan), query.group_by, std::move(specs));
    if (cost_based && est >= 0.0) {
      // Group count is bounded by the input cardinality; without joint
      // group-key statistics that bound is the estimate (I13: <= child).
      plan->set_estimated_rows(est);
    }
  }

  if (!query.order_by.empty()) {
    std::vector<algebra::Sort::Key> keys;
    for (const xmlql::OrderSpec& spec : query.order_by) {
      std::optional<size_t> slot = plan->schema().SlotOf(spec.variable);
      if (!slot.has_value()) {
        return Status::InvalidArgument("ORDER BY variable $" + spec.variable +
                                       " not bound");
      }
      keys.push_back(algebra::Sort::Key{*slot, spec.descending});
    }
    plan = std::make_unique<algebra::Sort>(std::move(plan), std::move(keys));
    if (cost_based && est >= 0.0) plan->set_estimated_rows(est);  // I13: == child
  }
  if (query.limit >= 0) {
    plan = std::make_unique<algebra::Limit>(std::move(plan),
                                            static_cast<size_t>(query.limit));
    if (cost_based && est >= 0.0) {
      est = std::min(est, static_cast<double>(query.limit));
      plan->set_estimated_rows(est);
    }
  }
  return plan;
}

}  // namespace core
}  // namespace nimble
