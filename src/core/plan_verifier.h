#ifndef NIMBLE_CORE_PLAN_VERIFIER_H_
#define NIMBLE_CORE_PLAN_VERIFIER_H_

#include "common/status.h"
#include "core/fragmenter.h"
#include "core/plan_cache.h"
#include "metadata/catalog.h"
#include "xmlql/ast.h"
#include "xmlql/semantic.h"

namespace nimble {
namespace core {

/// CollectionResolver backed by the live Catalog: a bare name must resolve
/// to a defined mediated view, and "source:collection" must name a
/// registered source whose collection enumeration — when the source can
/// enumerate at all — contains the collection. An empty enumeration (a
/// source that is down, or one that does not expose a listing) resolves
/// permissively: availability is a runtime concern, not a static one.
class CatalogResolver : public xmlql::CollectionResolver {
 public:
  explicit CatalogResolver(const metadata::Catalog& catalog)
      : catalog_(catalog) {}

  [[nodiscard]] Status Resolve(const xmlql::SourceRef& ref) const override;

 private:
  const metadata::Catalog& catalog_;
};

/// Fragmentation invariants (F1–F4, DESIGN.md §2f) over one branch:
///   F1  the fragments' patterns cover the query's patterns exactly once;
///   F2  local + cross conditions cover the query's conditions exactly once;
///   F3  every fragment's schema matches its pattern's recomputed schema;
///   F4  pushdown legality — a fragment over a non-SQL source must not
///       translate to SQL, and every SQL emission round-trips through our
///       own relational parser (reparse, compare ToSql(), and check the
///       projection arity against the fragment's variable mapping).
/// Violations are kInternal: the fragmenter or SQL generator is broken.
[[nodiscard]] Status VerifyFragmentation(const xmlql::Query& query,
                                         const Fragmentation& fragmentation,
                                         const metadata::Catalog& catalog);

/// The full static-analysis pass over a compiled program: strict semantic
/// analysis with catalog resolution (xmlql/semantic.h), then per-branch
/// fragmentation verification. The engine runs this after compilation and
/// again on every plan-cache hit, so a cached plan whose catalog has moved
/// on is rejected (and evicted) instead of executed.
[[nodiscard]] Status VerifyCompiledProgram(const CompiledProgram& compiled,
                                           const metadata::Catalog& catalog);

}  // namespace core
}  // namespace nimble

#endif  // NIMBLE_CORE_PLAN_VERIFIER_H_
