#include "core/fragmenter.h"

#include "algebra/pattern_match.h"

namespace nimble {
namespace core {

Fragmentation FragmentQuery(const xmlql::Query& query) {
  Fragmentation out;
  out.fragments.reserve(query.patterns.size());
  for (const xmlql::PatternClause& pattern : query.patterns) {
    Fragment fragment;
    fragment.pattern = &pattern;
    fragment.schema = algebra::SchemaForPattern(pattern.root);
    out.fragments.push_back(std::move(fragment));
  }
  for (const xmlql::Condition& condition : query.conditions) {
    std::vector<std::string> vars = condition.Variables();
    Fragment* owner = nullptr;
    for (Fragment& fragment : out.fragments) {
      bool covers = true;
      for (const std::string& var : vars) {
        if (!fragment.schema.SlotOf(var).has_value()) {
          covers = false;
          break;
        }
      }
      if (covers) {
        owner = &fragment;
        break;
      }
    }
    if (owner != nullptr) {
      owner->local_conditions.push_back(&condition);
    } else {
      out.cross_conditions.push_back(&condition);
    }
  }
  return out;
}

}  // namespace core
}  // namespace nimble
