#include "core/plan_verifier.h"

#include <algorithm>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "algebra/pattern_match.h"
#include "core/sql_generator.h"
#include "relational/sql_ast.h"
#include "relational/sql_parser.h"

namespace nimble {
namespace core {

namespace {

Status Violation(const std::string& what) {
  return Status::Internal("fragmentation verifier: " + what);
}

/// F4 for one fragment: replay the engine's pushdown decision and check
/// both directions of the capability contract.
Status VerifySqlPushdown(const Fragment& fragment,
                         const connector::Connector& source,
                         const std::string& label) {
  const connector::SourceCapabilities caps = source.capabilities();
  Result<SqlTranslation> translation = TranslateFragmentToSql(
      fragment, caps, /*push_predicates=*/true);

  if (!caps.supports_sql) {
    if (translation.ok()) {
      return Violation("fragment " + label +
                       " translates to SQL but its source does not accept "
                       "SQL");
    }
    return Status::OK();
  }
  if (!translation.ok()) return Status::OK();  // fetch+match fallback

  // Round-trip: the emitted SELECT must parse with our own relational
  // parser, render back to the identical text, and project exactly the
  // columns the variable mapping promises.
  Result<relational::SqlStatement> reparsed =
      relational::ParseSql(translation->sql);
  if (!reparsed.ok()) {
    return Violation("fragment " + label + " emitted SQL that our parser "
                     "rejects: " +
                     reparsed.status().message() + " [" + translation->sql +
                     "]");
  }
  const auto* select = std::get_if<relational::SelectStmt>(&*reparsed);
  if (select == nullptr) {
    return Violation("fragment " + label +
                     " emitted SQL that is not a SELECT [" +
                     translation->sql + "]");
  }
  std::string rendered = select->ToSql();
  if (rendered != translation->sql) {
    return Violation("fragment " + label + " SQL does not round-trip: [" +
                     translation->sql + "] reparses as [" + rendered + "]");
  }
  if (select->select_star ||
      select->items.size() != translation->variables.size()) {
    return Violation("fragment " + label + " projects " +
                     std::to_string(select->items.size()) +
                     " columns for " +
                     std::to_string(translation->variables.size()) +
                     " variables [" + translation->sql + "]");
  }
  // Conditions folded into the WHERE clause must come from this fragment.
  for (const xmlql::Condition* pushed : translation->pushed_conditions) {
    if (std::find(fragment.local_conditions.begin(),
                  fragment.local_conditions.end(),
                  pushed) == fragment.local_conditions.end()) {
      return Violation("fragment " + label +
                       " pushed a condition it does not own");
    }
  }
  return Status::OK();
}

}  // namespace

Status CatalogResolver::Resolve(const xmlql::SourceRef& ref) const {
  if (ref.is_view()) {
    if (catalog_.view(ref.collection) == nullptr) {
      return Status::NotFound("no view or source named '" + ref.collection +
                              "'");
    }
    return Status::OK();
  }
  connector::Connector* source = catalog_.source(ref.source);
  if (source == nullptr) {
    return Status::NotFound("no source named '" + ref.source + "'");
  }
  // Only reject when the source positively enumerates its collections and
  // the referenced one is missing; an empty listing (source down, or no
  // listing support) is a runtime availability matter.
  std::vector<std::string> collections = source->Collections();
  if (!collections.empty() &&
      std::find(collections.begin(), collections.end(), ref.collection) ==
          collections.end()) {
    return Status::NotFound("source '" + ref.source + "' has no collection '" +
                            ref.collection + "'");
  }
  return Status::OK();
}

Status VerifyFragmentation(const xmlql::Query& query,
                           const Fragmentation& fragmentation,
                           const metadata::Catalog& catalog) {
  // F1: the fragments partition the query's patterns — every fragment
  // points at one of them, and each pattern is claimed exactly once.
  std::map<const xmlql::PatternClause*, int> pattern_claims;
  for (const xmlql::PatternClause& pattern : query.patterns) {
    pattern_claims[&pattern] = 0;
  }
  for (const Fragment& fragment : fragmentation.fragments) {
    if (fragment.pattern == nullptr) {
      return Violation("fragment with null pattern");
    }
    auto it = pattern_claims.find(fragment.pattern);
    if (it == pattern_claims.end()) {
      return Violation("fragment pattern <" + fragment.pattern->root.tag +
                       "> is not a pattern of this query");
    }
    ++it->second;
  }
  for (const auto& [pattern, claims] : pattern_claims) {
    if (claims != 1) {
      return Violation("pattern <" + pattern->root.tag + "> covered " +
                       std::to_string(claims) + " times (expected once)");
    }
  }

  // F2: local + cross conditions partition the query's conditions.
  std::map<const xmlql::Condition*, int> condition_claims;
  for (const xmlql::Condition& cond : query.conditions) {
    condition_claims[&cond] = 0;
  }
  auto claim = [&](const xmlql::Condition* cond,
                   const char* where) -> Status {
    auto it = condition_claims.find(cond);
    if (it == condition_claims.end()) {
      return Violation(std::string(where) +
                       " condition is not a condition of this query");
    }
    ++it->second;
    return Status::OK();
  };
  for (const Fragment& fragment : fragmentation.fragments) {
    for (const xmlql::Condition* cond : fragment.local_conditions) {
      NIMBLE_RETURN_IF_ERROR(claim(cond, "local"));
    }
  }
  for (const xmlql::Condition* cond : fragmentation.cross_conditions) {
    NIMBLE_RETURN_IF_ERROR(claim(cond, "cross"));
  }
  for (const auto& [cond, claims] : condition_claims) {
    if (claims != 1) {
      return Violation("condition" +
                       (cond->pos.known() ? " at " + cond->pos.ToString()
                                          : std::string()) +
                       " assigned " + std::to_string(claims) +
                       " times (expected once)");
    }
  }

  // F3 + F4 per fragment.
  for (const Fragment& fragment : fragmentation.fragments) {
    const xmlql::SourceRef& ref = fragment.pattern->source;
    const std::string label = ref.ToString();
    if (!(fragment.schema ==
          algebra::SchemaForPattern(fragment.pattern->root))) {
      return Violation(
          "fragment " + label + " schema " + fragment.schema.ToString() +
          " does not match its pattern (expected " +
          algebra::SchemaForPattern(fragment.pattern->root).ToString() + ")");
    }
    if (!ref.is_view()) {
      connector::Connector* source = catalog.source(ref.source);
      // A missing source is a semantic (resolver) error, not a
      // fragmentation defect; skip the pushdown replay.
      if (source != nullptr) {
        NIMBLE_RETURN_IF_ERROR(VerifySqlPushdown(fragment, *source, label));
      }
    }
  }
  return Status::OK();
}

Status VerifyCompiledProgram(const CompiledProgram& compiled,
                             const metadata::Catalog& catalog) {
  if (compiled.fragmentations.size() != compiled.program.branches.size()) {
    return Violation(
        std::to_string(compiled.fragmentations.size()) +
        " fragmentations for " +
        std::to_string(compiled.program.branches.size()) + " branches");
  }
  CatalogResolver resolver(catalog);
  xmlql::AnalysisOptions analysis;
  analysis.resolver = &resolver;
  analysis.strict = true;
  NIMBLE_RETURN_IF_ERROR(xmlql::AnalyzeProgram(compiled.program, analysis));
  for (size_t i = 0; i < compiled.program.branches.size(); ++i) {
    NIMBLE_RETURN_IF_ERROR(VerifyFragmentation(compiled.program.branches[i],
                                               compiled.fragmentations[i],
                                               catalog));
  }
  return Status::OK();
}

}  // namespace core
}  // namespace nimble
