#include "core/partial_results.h"

namespace nimble {
namespace core {

std::string CompletenessInfo::ToString() const {
  if (complete) return "complete";
  std::string out = "INCOMPLETE; unavailable sources: ";
  for (size_t i = 0; i < unavailable_sources.size(); ++i) {
    if (i > 0) out += ", ";
    out += unavailable_sources[i];
  }
  if (!skipped_branches.empty()) {
    out += "; skipped branches: ";
    for (size_t i = 0; i < skipped_branches.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(skipped_branches[i]);
    }
  }
  return out;
}

}  // namespace core
}  // namespace nimble
