#include "core/sql_generator.h"

#include <map>

#include "relational/sql_ast.h"

namespace nimble {
namespace core {

namespace {

using relational::SqlExpr;

/// Maps an XML-QL comparison operator to its SQL spelling.
const char* SqlOp(xmlql::Condition::Op op) {
  switch (op) {
    case xmlql::Condition::Op::kEq:
      return "=";
    case xmlql::Condition::Op::kNe:
      return "!=";
    case xmlql::Condition::Op::kLt:
      return "<";
    case xmlql::Condition::Op::kLe:
      return "<=";
    case xmlql::Condition::Op::kGt:
      return ">";
    case xmlql::Condition::Op::kGe:
      return ">=";
    case xmlql::Condition::Op::kLike:
      return "LIKE";
  }
  return "=";
}

bool PatternIsPlainElement(const xmlql::ElementPattern& p) {
  return !p.descendant && p.attributes.empty() && p.element_variable.empty() &&
         p.content_variable.empty() && !p.content_literal.has_value() &&
         p.tag != "*";
}

bool FieldIsPlain(const xmlql::ElementPattern& p) {
  return !p.descendant && p.attributes.empty() && p.element_variable.empty() &&
         p.children.empty() && p.tag != "*";
}

}  // namespace

Result<SqlTranslation> TranslateFragmentToSql(
    const Fragment& fragment, const connector::SourceCapabilities& caps,
    bool push_predicates, const BindValues* bind_values,
    const TopLevelPushdown* top) {
  if (!caps.supports_sql) {
    return Status::Unsupported("source does not accept SQL");
  }
  const xmlql::ElementPattern& root = fragment.pattern->root;
  const std::string& table = fragment.pattern->source.collection;

  // Shape check: root → single record → flat fields.
  if (!PatternIsPlainElement(root) || root.children.size() != 1) {
    return Status::Unsupported("pattern is not table-shaped (root)");
  }
  const xmlql::ElementPattern& record = *root.children[0];
  if (!PatternIsPlainElement(record) || record.children.empty()) {
    return Status::Unsupported("pattern is not table-shaped (record)");
  }

  // variable → column; literal field constraints become predicates.
  std::map<std::string, std::string> var_to_column;
  std::vector<std::pair<std::string, Value>> literal_fields;
  std::vector<std::pair<std::string, std::string>> duplicate_bindings;
  for (const auto& field : record.children) {
    if (!FieldIsPlain(*field)) {
      return Status::Unsupported("pattern is not table-shaped (field '" +
                                 field->tag + "')");
    }
    if (field->content_literal.has_value()) {
      literal_fields.emplace_back(field->tag, *field->content_literal);
    }
    if (!field->content_variable.empty()) {
      auto [it, inserted] =
          var_to_column.try_emplace(field->content_variable, field->tag);
      if (!inserted) {
        // Same variable on two columns: equality predicate between them.
        duplicate_bindings.emplace_back(it->second, field->tag);
      }
    }
  }
  if (var_to_column.empty()) {
    return Status::Unsupported("pattern binds no variables");
  }

  SqlTranslation translation;
  relational::SelectStmt stmt;
  stmt.from.table = table;
  for (const auto& [var, column] : var_to_column) {
    relational::SelectItem item;
    item.expr = SqlExpr::ColumnRef("", column);
    stmt.items.push_back(std::move(item));
    translation.variables.push_back(var);
  }

  std::unique_ptr<SqlExpr> where;
  auto add_conjunct = [&where](std::unique_ptr<SqlExpr> expr) {
    where = where == nullptr
                ? std::move(expr)
                : SqlExpr::Binary("AND", std::move(where), std::move(expr));
  };
  for (const auto& [column, literal] : literal_fields) {
    add_conjunct(SqlExpr::Binary("=", SqlExpr::ColumnRef("", column),
                                 SqlExpr::Literal(literal)));
  }
  for (const auto& [col_a, col_b] : duplicate_bindings) {
    add_conjunct(SqlExpr::Binary("=", SqlExpr::ColumnRef("", col_a),
                                 SqlExpr::ColumnRef("", col_b)));
  }

  if (push_predicates && caps.supports_predicates) {
    for (const xmlql::Condition* condition : fragment.local_conditions) {
      // Both operands must translate: variables to columns of this table,
      // literals verbatim.
      auto translate_operand =
          [&](const xmlql::Condition::Operand& operand)
          -> std::unique_ptr<SqlExpr> {
        if (!operand.is_variable) return SqlExpr::Literal(operand.literal);
        auto it = var_to_column.find(operand.variable);
        if (it == var_to_column.end()) return nullptr;
        return SqlExpr::ColumnRef("", it->second);
      };
      std::unique_ptr<SqlExpr> lhs = translate_operand(condition->lhs);
      std::unique_ptr<SqlExpr> rhs = translate_operand(condition->rhs);
      if (lhs == nullptr || rhs == nullptr) continue;
      if (condition->lhs.is_variable) {
        const std::string& column = var_to_column[condition->lhs.variable];
        if (caps.HasIndexOn(table, column)) {
          translation.predicate_hits_index = true;
        }
      }
      add_conjunct(SqlExpr::Binary(SqlOp(condition->op), std::move(lhs),
                                   std::move(rhs)));
      translation.pushed_conditions.push_back(condition);
    }
  }
  // Bind-join semijoin filters: for variables whose complete value set is
  // already known from other fragments, push `col IN (…)`.
  if (push_predicates && caps.supports_predicates && bind_values != nullptr) {
    for (const auto& [var, values] : *bind_values) {
      auto it = var_to_column.find(var);
      if (it == var_to_column.end()) continue;
      std::unique_ptr<SqlExpr> in = SqlExpr::Function("IN");
      in->args.push_back(SqlExpr::ColumnRef("", it->second));
      size_t added = 0;
      for (const Value& v : values) {
        if (v.is_null()) continue;  // null never equi-joins
        in->args.push_back(SqlExpr::Literal(v));
        ++added;
      }
      if (added == 0) continue;
      if (caps.HasIndexOn(table, it->second)) {
        translation.predicate_hits_index = true;
      }
      add_conjunct(std::move(in));
      translation.bound_variables.push_back(var);
    }
  }

  stmt.where = std::move(where);

  // Single-fragment ORDER BY / LIMIT pushdown.
  if (top != nullptr && top->order_by != nullptr) {
    bool all_keys_map = true;
    for (const xmlql::OrderSpec& spec : *top->order_by) {
      if (var_to_column.count(spec.variable) == 0) {
        all_keys_map = false;
        break;
      }
    }
    if (all_keys_map && !top->order_by->empty()) {
      for (const xmlql::OrderSpec& spec : *top->order_by) {
        relational::OrderKey key;
        key.expr = SqlExpr::ColumnRef("", var_to_column[spec.variable]);
        key.descending = spec.descending;
        // The SQL subset requires ORDER BY keys in the select list; all
        // bound variables are projected, so this holds by construction.
        stmt.order_by.push_back(std::move(key));
      }
      translation.order_pushed = true;
    }
    bool all_conditions_pushed =
        translation.pushed_conditions.size() ==
        fragment.local_conditions.size();
    bool order_satisfied =
        top->order_by->empty() || translation.order_pushed;
    if (top->limit >= 0 && all_conditions_pushed && order_satisfied) {
      stmt.limit = top->limit;
      translation.limit_pushed = true;
    }
  }

  translation.sql = stmt.ToSql();
  return translation;
}

}  // namespace core
}  // namespace nimble
