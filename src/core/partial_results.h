#ifndef NIMBLE_CORE_PARTIAL_RESULTS_H_
#define NIMBLE_CORE_PARTIAL_RESULTS_H_

#include <string>
#include <vector>

namespace nimble {
namespace core {

/// What to do when a data source is unavailable mid-query (paper §3.4:
/// "it is often not acceptable … to simply return an error or an empty
/// result"; the system should provide "partial results, and indicat[e] to
/// the user that the results were not complete").
enum class AvailabilityPolicy {
  /// Fail the whole query on the first unavailable source.
  kFailFast,
  /// Skip query branches whose sources are down; annotate the result as
  /// incomplete and list what was missing.
  kPartial,
};

/// Completeness annotation attached to every query result.
struct CompletenessInfo {
  bool complete = true;
  /// Sources that could not be reached.
  std::vector<std::string> unavailable_sources;
  /// UNION branches (by index) skipped because of unavailable sources.
  std::vector<size_t> skipped_branches;

  std::string ToString() const;
};

}  // namespace core
}  // namespace nimble

#endif  // NIMBLE_CORE_PARTIAL_RESULTS_H_
