#ifndef NIMBLE_CORE_SQL_GENERATOR_H_
#define NIMBLE_CORE_SQL_GENERATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "connector/connector.h"
#include "core/fragmenter.h"

namespace nimble {
namespace core {

/// The SQL produced for one fragment, plus the mapping back to variables.
struct SqlTranslation {
  std::string sql;  ///< SELECT text sent over the "wire" to the source.
  /// Output column i of the result set binds variables[i].
  std::vector<std::string> variables;
  /// Local conditions folded into the SQL WHERE clause (already applied;
  /// the mediator must not re-apply them — though doing so is harmless).
  std::vector<const xmlql::Condition*> pushed_conditions;
  /// True when some pushed predicate column has a source-side index
  /// (informational; surfaced in execution reports).
  bool predicate_hits_index = false;
  /// Variables constrained by pushed bind-join IN lists.
  std::vector<std::string> bound_variables;
  /// ORDER BY / LIMIT folded into the SQL (single-fragment fast path).
  bool order_pushed = false;
  bool limit_pushed = false;
};

/// Top-of-query clauses eligible for single-fragment pushdown.
struct TopLevelPushdown {
  const std::vector<xmlql::OrderSpec>* order_by = nullptr;
  int64_t limit = -1;
};

/// Join-key values already known from other fragments, pushable as
/// `col IN (…)` semijoin filters (bind join — the distributed-mediator
/// optimization of Adali et al., the paper's [1]). Values must be the
/// *complete* distinct set for the variable; nulls are skipped (they never
/// equi-join).
using BindValues = std::map<std::string, std::vector<Value>>;

/// Translates a fragment over a SQL-capable source into a SELECT, per the
/// paper §2.1: "if an RDB is being queried, then the compiler generates
/// SQL", considering "the type of the underlying source, information
/// concerning the layout of the data within the sources, and the presence
/// of indices".
///
/// The pattern must be *table-shaped*:
///   <collection>            — root tag is arbitrary, FROM uses the
///     <record>              — exactly one record-level pattern
///       <field>$v</field>   — flat fields binding content variables
///       <field>literal</field> — or constraining literals
///     </record>
///   </collection>
/// Anything else (attributes, nesting, descendant steps, ELEMENT_AS)
/// returns kUnsupported and the engine falls back to fetch-and-match.
///
/// When `push_predicates` is false (the E3 ablation), only the projection
/// is pushed; all conditions stay in the mediator.
/// `top` (nullable) carries ORDER BY / LIMIT when the fragment is the
/// whole query (single fragment, no cross conditions, no aggregation):
/// ORDER BY is pushed when every key maps to a column; LIMIT additionally
/// requires that every local condition was pushed (a mediator-side
/// residual filter after a source-side LIMIT would drop rows).
Result<SqlTranslation> TranslateFragmentToSql(
    const Fragment& fragment, const connector::SourceCapabilities& caps,
    bool push_predicates, const BindValues* bind_values = nullptr,
    const TopLevelPushdown* top = nullptr);

}  // namespace core
}  // namespace nimble

#endif  // NIMBLE_CORE_SQL_GENERATOR_H_
