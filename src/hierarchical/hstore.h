#ifndef NIMBLE_HIERARCHICAL_HSTORE_H_
#define NIMBLE_HIERARCHICAL_HSTORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/node.h"
#include "xml/value.h"

namespace nimble {
namespace hierarchical {

/// An attribute set attached to one entry.
using AttributeMap = std::map<std::string, Value>;

/// A simple filter over entry attributes: conjunction of comparisons.
struct AttrCondition {
  std::string attribute;
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kPresent } op = Op::kEq;
  Value operand;

  bool Matches(const AttributeMap& attrs) const;
};

/// An LDAP-like hierarchical store: entries are addressed by slash-separated
/// paths ("/corp/sales/emp42"), each carrying typed attributes. This is the
/// substrate for the paper's "hierarchical" legacy sources (§3.1 argues the
/// Nimble data model must accommodate hierarchical data natively).
class HStore {
 public:
  explicit HStore(std::string store_name = "hstore")
      : name_(std::move(store_name)) {}

  HStore(const HStore&) = delete;
  HStore& operator=(const HStore&) = delete;

  const std::string& name() const { return name_; }

  /// Creates or replaces the entry at `path`, creating intermediate entries
  /// (with empty attributes) as needed. Paths must start with '/'.
  Status Put(const std::string& path, AttributeMap attributes);

  /// Attributes of the entry at `path`.
  Result<AttributeMap> Get(const std::string& path) const;

  bool Exists(const std::string& path) const;

  /// Direct children paths of `path`, in insertion order.
  Result<std::vector<std::string>> ListChildren(const std::string& path) const;

  /// Removes the entry and its whole subtree; returns entries removed.
  size_t DeleteSubtree(const std::string& path);

  /// All entry paths under `base` (inclusive if it exists, exclusive of
  /// intermediate entries with no attributes unless include_empty) whose
  /// attributes satisfy every condition.
  std::vector<std::string> Search(const std::string& base,
                                  const std::vector<AttrCondition>& conditions,
                                  bool include_empty = false) const;

  /// Number of entries (excluding the implicit root).
  size_t size() const;

  /// Materializes the subtree at `base` as an XML tree: each entry becomes
  /// an element named `entry` with a `path` attribute, attributes become
  /// scalar children, children nest. Used by the hierarchical connector.
  Result<NodePtr> ExportXml(const std::string& base,
                            const std::string& element_name = "entry") const;

  /// Monotone version counter for staleness checks.
  uint64_t version() const { return version_; }

 private:
  struct Entry {
    std::string name;  ///< last path segment.
    AttributeMap attributes;
    bool materialized = false;  ///< false for auto-created intermediates.
    std::vector<std::unique_ptr<Entry>> children;

    Entry* FindChild(const std::string& child_name);
    const Entry* FindChild(const std::string& child_name) const;
  };

  static Result<std::vector<std::string>> SplitPath(const std::string& path);
  const Entry* Resolve(const std::string& path) const;

  void SearchRec(const Entry& entry, const std::string& prefix,
                 const std::vector<AttrCondition>& conditions,
                 bool include_empty, std::vector<std::string>* out) const;
  void ExportRec(const Entry& entry, const std::string& prefix,
                 const std::string& element_name, Node* parent) const;

  std::string name_;
  Entry root_;
  uint64_t version_ = 0;
};

}  // namespace hierarchical
}  // namespace nimble

#endif  // NIMBLE_HIERARCHICAL_HSTORE_H_
