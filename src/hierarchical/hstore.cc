#include "hierarchical/hstore.h"

#include "common/strings.h"

namespace nimble {
namespace hierarchical {

bool AttrCondition::Matches(const AttributeMap& attrs) const {
  auto it = attrs.find(attribute);
  if (op == Op::kPresent) return it != attrs.end();
  if (it == attrs.end()) return false;
  int cmp = it->second.Compare(operand);
  switch (op) {
    case Op::kEq:
      return cmp == 0;
    case Op::kNe:
      return cmp != 0;
    case Op::kLt:
      return cmp < 0;
    case Op::kLe:
      return cmp <= 0;
    case Op::kGt:
      return cmp > 0;
    case Op::kGe:
      return cmp >= 0;
    case Op::kPresent:
      return true;
  }
  return false;
}

HStore::Entry* HStore::Entry::FindChild(const std::string& child_name) {
  for (auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  return nullptr;
}

const HStore::Entry* HStore::Entry::FindChild(
    const std::string& child_name) const {
  for (const auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  return nullptr;
}

Result<std::vector<std::string>> HStore::SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must start with '/': " + path);
  }
  std::vector<std::string> segments;
  for (const std::string& seg : Split(path.substr(1), '/')) {
    if (seg.empty()) {
      if (path == "/") break;  // root
      return Status::InvalidArgument("empty path segment in: " + path);
    }
    segments.push_back(seg);
  }
  return segments;
}

Status HStore::Put(const std::string& path, AttributeMap attributes) {
  NIMBLE_ASSIGN_OR_RETURN(std::vector<std::string> segments, SplitPath(path));
  if (segments.empty()) {
    return Status::InvalidArgument("cannot Put at the root");
  }
  Entry* current = &root_;
  for (const std::string& seg : segments) {
    Entry* child = current->FindChild(seg);
    if (child == nullptr) {
      auto fresh = std::make_unique<Entry>();
      fresh->name = seg;
      child = fresh.get();
      current->children.push_back(std::move(fresh));
    }
    current = child;
  }
  current->attributes = std::move(attributes);
  current->materialized = true;
  ++version_;
  return Status::OK();
}

const HStore::Entry* HStore::Resolve(const std::string& path) const {
  Result<std::vector<std::string>> segments = SplitPath(path);
  if (!segments.ok()) return nullptr;
  const Entry* current = &root_;
  for (const std::string& seg : *segments) {
    current = current->FindChild(seg);
    if (current == nullptr) return nullptr;
  }
  return current;
}

Result<AttributeMap> HStore::Get(const std::string& path) const {
  const Entry* entry = Resolve(path);
  if (entry == nullptr || (!entry->materialized && entry != &root_)) {
    return Status::NotFound("no entry at " + path);
  }
  return entry->attributes;
}

bool HStore::Exists(const std::string& path) const {
  const Entry* entry = Resolve(path);
  return entry != nullptr && (entry->materialized || entry == &root_);
}

Result<std::vector<std::string>> HStore::ListChildren(
    const std::string& path) const {
  const Entry* entry = Resolve(path);
  if (entry == nullptr) return Status::NotFound("no entry at " + path);
  std::vector<std::string> out;
  std::string prefix = path == "/" ? "" : path;
  for (const auto& child : entry->children) {
    out.push_back(prefix + "/" + child->name);
  }
  return out;
}

size_t HStore::DeleteSubtree(const std::string& path) {
  Result<std::vector<std::string>> segments = SplitPath(path);
  if (!segments.ok() || segments->empty()) return 0;
  Entry* current = &root_;
  Entry* parent = nullptr;
  size_t child_index = 0;
  for (const std::string& seg : *segments) {
    bool found = false;
    for (size_t i = 0; i < current->children.size(); ++i) {
      if (current->children[i]->name == seg) {
        parent = current;
        child_index = i;
        current = current->children[i].get();
        found = true;
        break;
      }
    }
    if (!found) return 0;
  }
  // Count materialized entries in the subtree.
  std::function<size_t(const Entry&)> count = [&](const Entry& e) -> size_t {
    size_t n = e.materialized ? 1 : 0;
    for (const auto& c : e.children) n += count(*c);
    return n;
  };
  size_t removed = count(*current);
  parent->children.erase(parent->children.begin() +
                         static_cast<ptrdiff_t>(child_index));
  if (removed > 0) ++version_;
  return removed;
}

void HStore::SearchRec(const Entry& entry, const std::string& prefix,
                       const std::vector<AttrCondition>& conditions,
                       bool include_empty,
                       std::vector<std::string>* out) const {
  if ((entry.materialized || include_empty) && &entry != &root_) {
    bool all = true;
    for (const AttrCondition& cond : conditions) {
      if (!cond.Matches(entry.attributes)) {
        all = false;
        break;
      }
    }
    if (all) out->push_back(prefix);
  }
  for (const auto& child : entry.children) {
    SearchRec(*child, prefix + "/" + child->name, conditions, include_empty,
              out);
  }
}

std::vector<std::string> HStore::Search(
    const std::string& base, const std::vector<AttrCondition>& conditions,
    bool include_empty) const {
  std::vector<std::string> out;
  const Entry* entry = Resolve(base);
  if (entry == nullptr) return out;
  std::string prefix = base == "/" ? "" : base;
  if (entry == &root_) {
    for (const auto& child : entry->children) {
      SearchRec(*child, prefix + "/" + child->name, conditions, include_empty,
                &out);
    }
  } else {
    SearchRec(*entry, base, conditions, include_empty, &out);
  }
  return out;
}

size_t HStore::size() const {
  std::function<size_t(const Entry&)> count = [&](const Entry& e) -> size_t {
    size_t n = e.materialized ? 1 : 0;
    for (const auto& c : e.children) n += count(*c);
    return n;
  };
  return count(root_);
}

void HStore::ExportRec(const Entry& entry, const std::string& prefix,
                       const std::string& element_name, Node* parent) const {
  NodePtr elem = Node::Element(element_name);
  elem->SetAttribute("path", Value::String(prefix));
  elem->SetAttribute("name", Value::String(entry.name));
  for (const auto& [attr_name, attr_value] : entry.attributes) {
    elem->AddScalarChild(attr_name, attr_value);
  }
  Node* raw = parent->AddChild(std::move(elem)).get();
  for (const auto& child : entry.children) {
    ExportRec(*child, prefix + "/" + child->name, element_name, raw);
  }
}

Result<NodePtr> HStore::ExportXml(const std::string& base,
                                  const std::string& element_name) const {
  const Entry* entry = Resolve(base);
  if (entry == nullptr) return Status::NotFound("no entry at " + base);
  NodePtr root = Node::Element(name_);
  std::string prefix = base == "/" ? "" : base;
  if (entry == &root_) {
    for (const auto& child : entry->children) {
      ExportRec(*child, prefix + "/" + child->name, element_name, root.get());
    }
  } else {
    ExportRec(*entry, base, element_name, root.get());
  }
  return root;
}

}  // namespace hierarchical
}  // namespace nimble
