#ifndef NIMBLE_COMMON_THREAD_ANNOTATIONS_H_
#define NIMBLE_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes (-Wthread-safety), wrapped so the
/// whole tree can annotate its locking discipline and have it *proven at
/// compile time* under Clang while remaining a no-op under GCC/MSVC.
///
/// The vocabulary follows the Clang documentation and Abseil's
/// thread_annotations.h:
///
///   * `NIMBLE_CAPABILITY("mutex")` on a class declares it a lockable
///     capability (see common/mutex.h for the annotated wrappers).
///   * `NIMBLE_GUARDED_BY(mu)` on a data member: reads require `mu` held
///     (shared or exclusive), writes require it held exclusively.
///   * `NIMBLE_PT_GUARDED_BY(mu)` on a pointer member: dereferences of the
///     pointee require `mu`; the pointer itself is unguarded.
///   * `NIMBLE_REQUIRES(mu)` / `NIMBLE_REQUIRES_SHARED(mu)` on a function:
///     callers must already hold `mu` (the `*Locked()` helper convention).
///   * `NIMBLE_ACQUIRE/RELEASE(...)` and the `_SHARED` forms on functions
///     that take or drop a lock; `NIMBLE_EXCLUDES(mu)` on functions that
///     must be entered with `mu` NOT held (self-deadlock guard).
///   * `NIMBLE_SCOPED_CAPABILITY` on RAII guard classes.
///
/// Build integration: Clang builds always compile with `-Wthread-safety`;
/// the `NIMBLE_WERROR_THREAD_SAFETY` CMake option (on in the CI lint job)
/// promotes every finding to an error. GCC builds see empty macros.

#if defined(__clang__) && !defined(SWIG)
#define NIMBLE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define NIMBLE_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define NIMBLE_CAPABILITY(x) NIMBLE_THREAD_ANNOTATION_(capability(x))

#define NIMBLE_SCOPED_CAPABILITY NIMBLE_THREAD_ANNOTATION_(scoped_lockable)

#define NIMBLE_GUARDED_BY(x) NIMBLE_THREAD_ANNOTATION_(guarded_by(x))

#define NIMBLE_PT_GUARDED_BY(x) NIMBLE_THREAD_ANNOTATION_(pt_guarded_by(x))

#define NIMBLE_ACQUIRED_BEFORE(...) \
  NIMBLE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define NIMBLE_ACQUIRED_AFTER(...) \
  NIMBLE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define NIMBLE_REQUIRES(...) \
  NIMBLE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define NIMBLE_REQUIRES_SHARED(...) \
  NIMBLE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define NIMBLE_ACQUIRE(...) \
  NIMBLE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define NIMBLE_ACQUIRE_SHARED(...) \
  NIMBLE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define NIMBLE_RELEASE(...) \
  NIMBLE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define NIMBLE_RELEASE_SHARED(...) \
  NIMBLE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define NIMBLE_RELEASE_GENERIC(...) \
  NIMBLE_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

#define NIMBLE_TRY_ACQUIRE(...) \
  NIMBLE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define NIMBLE_EXCLUDES(...) NIMBLE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define NIMBLE_ASSERT_CAPABILITY(x) \
  NIMBLE_THREAD_ANNOTATION_(assert_capability(x))

#define NIMBLE_RETURN_CAPABILITY(x) NIMBLE_THREAD_ANNOTATION_(lock_returned(x))

#define NIMBLE_NO_THREAD_SAFETY_ANALYSIS \
  NIMBLE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // NIMBLE_COMMON_THREAD_ANNOTATIONS_H_
