#ifndef NIMBLE_COMMON_RESULT_H_
#define NIMBLE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace nimble {

/// Holds either a value of type T or an error Status. Analogous to
/// arrow::Result. A Result constructed from an OK Status is a programming
/// error (asserted in debug builds).
///
/// [[nodiscard]]: dropping a Result discards the value *and* the error;
/// call sites that only want the side effect must (void)-cast explicitly.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit so `return value;` works from functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so `return Status::...();` works.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace nimble

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define NIMBLE_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  NIMBLE_ASSIGN_OR_RETURN_IMPL_(                                 \
      NIMBLE_CONCAT_(_nimble_result_, __LINE__), lhs, rexpr)

#define NIMBLE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define NIMBLE_CONCAT_(a, b) NIMBLE_CONCAT_IMPL_(a, b)
#define NIMBLE_CONCAT_IMPL_(a, b) a##b

#endif  // NIMBLE_COMMON_RESULT_H_
