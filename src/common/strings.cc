#include "common/strings.h"

#include <cctype>

namespace nimble {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    size_t start = i;
    while (i < input.size() && !std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) --end;
  return std::string(input.substr(begin, end - begin));
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

}  // namespace nimble
