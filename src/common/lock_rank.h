#ifndef NIMBLE_COMMON_LOCK_RANK_H_
#define NIMBLE_COMMON_LOCK_RANK_H_

#include <cstddef>

/// Deterministic deadlock prevention: every `nimble::Mutex`/`SharedMutex`
/// carries a rank from the process-wide hierarchy below, and debug builds
/// (`NIMBLE_LOCK_RANK_CHECKS`, defined for CMAKE_BUILD_TYPE=Debug — i.e.
/// every ASan/TSan CI run) verify on *each acquisition* that ranks are
/// strictly increasing down the thread's held-lock stack. A violation —
/// out-of-order acquisition, same-rank nesting, or re-entry of a held lock —
/// aborts immediately with both acquisition stacks, so a cross-subsystem
/// deadlock cycle (e.g. scheduler → engine → cache re-entry) is caught on
/// its first acquisition in any test run, not on the interleaving that
/// happens to deadlock.
///
/// The full rank table with the ordering rationale lives in DESIGN.md §2e.
/// Release builds compile the checks out entirely (the wrappers collapse to
/// a bare std::mutex / std::shared_mutex).

namespace nimble {

/// The global lock hierarchy, outermost (acquired first) to innermost.
/// Gaps of 100 leave room to interpose new subsystems without renumbering.
enum class LockRank : int {
  /// frontend::LoadBalancer — dispatch bookkeeping; released before the
  /// chosen engine runs.
  kLoadBalancer = 100,
  /// core::QueryHandle — async result latch; Fulfill/Wait/Cancel.
  kQueryHandle = 200,
  /// core::IntegrationEngine unscheduled-submit drain latch: counts Submit
  /// tasks running free on the worker pool; the engine destructor waits for
  /// zero. Taken only after the handle latch is released, never nested.
  kEngineInflight = 250,
  /// sched::QueryScheduler — admission queue; run/drop callbacks and pool
  /// submissions always fire after release.
  kScheduler = 300,
  /// metadata::Catalog listener registry; listeners are copied out and
  /// invoked unlocked.
  kCatalogListeners = 400,
  /// metadata::StatisticsCatalog map — snapshots are copied out shared;
  /// Analyze fetches from connectors before taking the lock, so connector
  /// data locks (rank 900) are never nested inside it.
  kStatistics = 450,
  /// core::PlanCache LRU.
  kPlanCache = 500,
  /// materialize::ResultCache per-shard LRU; compute callbacks run
  /// unlocked, so re-entering the cache from a compute trips re-entry
  /// detection here.
  kResultCacheShard = 600,
  /// materialize::ResultCache singleflight slot (leader publish / waiter
  /// wait); never nested with the shard lock.
  kResultCacheFlight = 700,
  /// connector::SimulatedSource availability/config state; the decorator
  /// releases it before charging the clock or entering the inner connector.
  kSimulatedSource = 800,
  /// dist::ShardCluster fragment-tree registry: shard connectors take a
  /// fragment snapshot under it and repartitioning swaps trees under it.
  /// Ranked after kSimulatedSource (a straggler-test wrapper sits outside a
  /// shard connector) and before kConnectorData (forwarding an unsharded
  /// collection enters a concrete connector; the registry lock is released
  /// first, but the rank keeps the nesting legal either way).
  kShardFragments = 850,
  /// Concrete connector data locks (XML documents, CSV collections,
  /// hierarchical mappings, relational database).
  kConnectorData = 900,
  /// connector::Connector cumulative transfer stats — innermost of the
  /// connector stack.
  kConnectorStats = 1000,
  /// ThreadPool::RunParallel per-batch completion latch.
  kThreadPoolBatch = 1100,
  /// ThreadPool task queue — a true leaf: tasks never run under it.
  kThreadPool = 1200,
};

namespace lock_rank {

#if defined(NIMBLE_LOCK_RANK_CHECKS)

/// Records `mutex` (with `rank`, for diagnostics `lock_name`) on the
/// calling thread's held-lock stack; aborts with both acquisition stacks on
/// a rank-order violation or re-entry.
void OnAcquire(LockRank rank, const char* lock_name, const void* mutex);

/// Removes `mutex` from the calling thread's held-lock stack (out-of-order
/// release — hand-over-hand locking — is allowed).
void OnRelease(const void* mutex);

/// Locks currently held by the calling thread (test hook).
size_t HeldDepth();

#else

inline void OnAcquire(LockRank, const char*, const void*) {}
inline void OnRelease(const void*) {}
inline size_t HeldDepth() { return 0; }

#endif  // NIMBLE_LOCK_RANK_CHECKS

}  // namespace lock_rank
}  // namespace nimble

#endif  // NIMBLE_COMMON_LOCK_RANK_H_
