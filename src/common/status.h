#ifndef NIMBLE_COMMON_STATUS_H_
#define NIMBLE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace nimble {

/// Error categories used across the library. Modelled after the
/// RocksDB/Arrow convention: no exceptions cross an API boundary; every
/// fallible operation returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kUnavailable,      ///< A data source is offline or unreachable.
  kParseError,       ///< Query-language or document syntax error.
  kTypeError,        ///< Value/type mismatch during evaluation.
  kPermissionDenied, ///< Lens authentication failure.
  kUnsupported,      ///< Operation outside a source's capabilities.
  kResourceExhausted,///< Admission control shed the request (overload).
  kTimeout,          ///< Query deadline exceeded.
  kCancelled,        ///< Query cooperatively cancelled mid-flight.
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy in the OK case
/// (no allocation); carries a message in the error case.
///
/// [[nodiscard]]: a dropped Status is a swallowed error — call sites that
/// genuinely do not care must say so with a (void) cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace nimble

/// Propagates a non-OK Status out of the enclosing function.
#define NIMBLE_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::nimble::Status _nimble_status = (expr);         \
    if (!_nimble_status.ok()) return _nimble_status;  \
  } while (false)

#endif  // NIMBLE_COMMON_STATUS_H_
