#include "common/thread_pool.h"

#include <atomic>
#include <memory>

namespace nimble {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) wake_.Wait(mutex_);
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::RunParallel(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks[0]();
    return;
  }

  // The batch is shared with helper jobs that may outlive this call (a
  // helper enqueued behind a long task can start after the batch is done;
  // it then finds no work and exits).
  struct Batch {
    // nimble-lint: unguarded(filled before the batch is shared, then read-only via the atomic cursor)
    std::vector<std::function<void()>> tasks;
    std::atomic<size_t> next{0};
    Mutex mutex{LockRank::kThreadPoolBatch, "thread_pool.batch"};
    CondVar done_cv;
    size_t completed NIMBLE_GUARDED_BY(mutex) = 0;
  };
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);
  const size_t total = batch->tasks.size();

  auto drain = [batch, total] {
    while (true) {
      size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      batch->tasks[i]();
      MutexLock lock(batch->mutex);
      if (++batch->completed == total) batch->done_cv.NotifyAll();
    }
  };

  // One helper per task beyond the one the caller will run itself, capped
  // at the pool width; excess helpers would only find an empty batch.
  size_t helpers = std::min(workers_.size(), total - 1);
  for (size_t i = 0; i < helpers; ++i) Submit(drain);
  drain();  // the caller participates — progress even with zero free workers

  MutexLock lock(batch->mutex);
  while (batch->completed != total) batch->done_cv.Wait(batch->mutex);
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(std::thread::hardware_concurrency());
  return pool;
}

}  // namespace nimble
