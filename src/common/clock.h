#ifndef NIMBLE_COMMON_CLOCK_H_
#define NIMBLE_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace nimble {

/// Abstraction over time so the federation experiments can run on *virtual*
/// time: simulated connectors charge their latency to the clock instead of
/// sleeping, which keeps the benchmark suite fast and deterministic.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;

  /// Advances time by `micros` (a real clock actually sleeps; a virtual
  /// clock just bumps its counter).
  virtual void AdvanceMicros(int64_t micros) = 0;
};

/// Wall-clock implementation; AdvanceMicros is a no-op spin-free "sleep"
/// realised through std::this_thread inside the .cc.
class RealClock : public Clock {
 public:
  int64_t NowMicros() const override;
  void AdvanceMicros(int64_t micros) override;
};

/// Deterministic virtual clock; starts at zero. Thread-safe: concurrent
/// fragment fetches all charge the same counter, so under simulated
/// parallelism virtual time is the *total* work done — wall-clock overlap
/// only shows up on a RealClock (see bench E6(c)).
class VirtualClock : public Clock {
 public:
  int64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceMicros(int64_t micros) override {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }

  /// Resets virtual time to zero (between benchmark trials).
  void Reset() { now_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_{0};
};

}  // namespace nimble

#endif  // NIMBLE_COMMON_CLOCK_H_
