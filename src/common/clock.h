#ifndef NIMBLE_COMMON_CLOCK_H_
#define NIMBLE_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace nimble {

/// Abstraction over time so the federation experiments can run on *virtual*
/// time: simulated connectors charge their latency to the clock instead of
/// sleeping, which keeps the benchmark suite fast and deterministic.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;

  /// Advances time by `micros` (a real clock actually sleeps; a virtual
  /// clock just bumps its counter).
  virtual void AdvanceMicros(int64_t micros) = 0;
};

/// Wall-clock implementation; AdvanceMicros is a no-op spin-free "sleep"
/// realised through std::this_thread inside the .cc.
class RealClock : public Clock {
 public:
  int64_t NowMicros() const override;
  void AdvanceMicros(int64_t micros) override;
};

/// Deterministic virtual clock; starts at zero.
class VirtualClock : public Clock {
 public:
  int64_t NowMicros() const override { return now_; }
  void AdvanceMicros(int64_t micros) override { now_ += micros; }

  /// Resets virtual time to zero (between benchmark trials).
  void Reset() { now_ = 0; }

 private:
  int64_t now_ = 0;
};

}  // namespace nimble

#endif  // NIMBLE_COMMON_CLOCK_H_
