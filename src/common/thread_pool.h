#ifndef NIMBLE_COMMON_THREAD_POOL_H_
#define NIMBLE_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nimble {

/// A fixed-size worker pool with a FIFO task queue — the substrate for the
/// engine's concurrent fragment fetches and the load balancer's batch
/// dispatch. Tasks must not throw.
///
/// Nested fork/join is explicitly supported: `RunParallel` lets the calling
/// thread drain its own batch, so a task running *on* the pool can itself
/// call `RunParallel` without deadlocking even when every worker is busy
/// (the call degrades to inline execution instead of blocking forever).
///
/// Locking: `mutex_` (rank kThreadPool) protects only the queue and the
/// stop flag; tasks always execute with it released, so a task may acquire
/// any other lock in the hierarchy.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues fire-and-forget work.
  void Submit(std::function<void()> task) NIMBLE_EXCLUDES(mutex_);

  /// Runs every task in `tasks` to completion before returning. Pool
  /// workers and the calling thread all pull from the batch; completion
  /// order is unspecified, so tasks must synchronise their own outputs
  /// (the engine writes each result into a caller-preallocated slot).
  void RunParallel(std::vector<std::function<void()>> tasks)
      NIMBLE_EXCLUDES(mutex_);

  /// Process-wide pool sized to the hardware, created on first use.
  /// Shared by every engine instance that does not request a private pool.
  static ThreadPool* Shared();

 private:
  void WorkerLoop() NIMBLE_EXCLUDES(mutex_);

  Mutex mutex_{LockRank::kThreadPool, "thread_pool.queue"};
  CondVar wake_;
  std::deque<std::function<void()>> queue_ NIMBLE_GUARDED_BY(mutex_);
  bool stopping_ NIMBLE_GUARDED_BY(mutex_) = false;
  /// Immutable after construction (the spawning loop runs before any
  /// worker can observe the vector).
  // nimble-lint: unguarded(immutable after construction; workers never touch the vector)
  std::vector<std::thread> workers_;
};

}  // namespace nimble

#endif  // NIMBLE_COMMON_THREAD_POOL_H_
