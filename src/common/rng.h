#ifndef NIMBLE_COMMON_RNG_H_
#define NIMBLE_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nimble {

/// Deterministic splitmix64-based PRNG. Used by the workload generators and
/// the availability simulator so every benchmark run is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Uniform over all 64-bit values.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random lower-case alphabetic string of length `len`.
  std::string RandomWord(size_t len) {
    std::string out(len, 'a');
    for (char& c : out) c = static_cast<char>('a' + Uniform(26));
    return out;
  }

  /// Picks a uniformly random element index of a container of size n.
  size_t Index(size_t n) { return static_cast<size_t>(Uniform(n)); }

 private:
  uint64_t state_;
};

/// Zipf-distributed integer generator over [0, n). Higher `skew` concentrates
/// probability mass on low ranks; skew 0 is uniform. Used for E2/E8 query
/// workloads.
class ZipfGenerator {
 public:
  ZipfGenerator(size_t n, double skew, uint64_t seed);

  /// Draws one rank in [0, n).
  size_t Next();

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace nimble

#endif  // NIMBLE_COMMON_RNG_H_
