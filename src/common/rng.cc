#include "common/rng.h"

#include <cmath>

namespace nimble {

ZipfGenerator::ZipfGenerator(size_t n, double skew, uint64_t seed)
    : rng_(seed), cdf_(n) {
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
  }
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = acc / total;
  }
}

size_t ZipfGenerator::Next() {
  double u = rng_.NextDouble();
  // Binary search for the first CDF entry >= u.
  size_t lo = 0, hi = cdf_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

}  // namespace nimble
