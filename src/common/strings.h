#ifndef NIMBLE_COMMON_STRINGS_H_
#define NIMBLE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace nimble {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char sep);

/// Splits on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view input);

/// ASCII lower-casing.
std::string ToLower(std::string_view input);

/// ASCII upper-casing.
std::string ToUpper(std::string_view input);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

}  // namespace nimble

#endif  // NIMBLE_COMMON_STRINGS_H_
