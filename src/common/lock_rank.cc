#include "common/lock_rank.h"

#if defined(NIMBLE_LOCK_RANK_CHECKS)

#include <cstdio>
#include <cstdlib>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define NIMBLE_LOCK_RANK_BACKTRACE 1
#endif
#endif

namespace nimble {
namespace lock_rank {

namespace {

constexpr int kMaxHeld = 32;        ///< deeper nesting is itself a bug.
constexpr int kMaxFrames = 16;      ///< frames captured per acquisition.

struct Held {
  int rank = 0;
  const char* lock_name = nullptr;
  const void* mutex = nullptr;
#if defined(NIMBLE_LOCK_RANK_BACKTRACE)
  void* frames[kMaxFrames];
  int frame_count = 0;
#endif
};

thread_local Held tls_held[kMaxHeld];
thread_local int tls_depth = 0;

void DumpEntry(const Held& held, const char* label) {
  std::fprintf(stderr, "[lock-rank]   %s \"%s\" (rank %d, mutex %p)\n", label,
               held.lock_name, held.rank, held.mutex);
#if defined(NIMBLE_LOCK_RANK_BACKTRACE)
  if (held.frame_count > 0) {
    backtrace_symbols_fd(held.frames, held.frame_count, /*fd=*/2);
  }
#endif
}

[[noreturn]] void Violation(const char* what, const Held& attempted,
                            const Held& conflicting) {
  std::fprintf(stderr,
               "[lock-rank] FATAL: %s\n"
               "[lock-rank] attempted acquisition (stack below):\n",
               what);
  DumpEntry(attempted, "acquiring");
  std::fprintf(stderr, "[lock-rank] conflicting held lock (stack below):\n");
  DumpEntry(conflicting, "held     ");
  if (tls_depth > 0) {
    std::fprintf(stderr, "[lock-rank] full held-lock stack (outermost first):\n");
    for (int i = 0; i < tls_depth; ++i) DumpEntry(tls_held[i], "held     ");
  }
  std::abort();
}

}  // namespace

void OnAcquire(LockRank rank, const char* lock_name, const void* mutex) {
  Held entry;
  entry.rank = static_cast<int>(rank);
  entry.lock_name = lock_name;
  entry.mutex = mutex;
#if defined(NIMBLE_LOCK_RANK_BACKTRACE)
  entry.frame_count = backtrace(entry.frames, kMaxFrames);
#endif

  for (int i = 0; i < tls_depth; ++i) {
    if (tls_held[i].mutex == mutex) {
      Violation("re-entrant acquisition of a lock this thread already holds",
                entry, tls_held[i]);
    }
  }
  if (tls_depth > 0) {
    const Held& top = tls_held[tls_depth - 1];
    if (top.rank >= entry.rank) {
      Violation(
          "out-of-rank-order acquisition (ranks must strictly increase; "
          "see DESIGN.md section 2e for the hierarchy)",
          entry, top);
    }
  }
  if (tls_depth >= kMaxHeld) {
    std::fprintf(stderr,
                 "[lock-rank] FATAL: more than %d locks held by one thread\n",
                 kMaxHeld);
    std::abort();
  }
  tls_held[tls_depth++] = entry;
}

void OnRelease(const void* mutex) {
  // Searched back-to-front: releases are almost always LIFO, but
  // hand-over-hand release order is legal.
  for (int i = tls_depth - 1; i >= 0; --i) {
    if (tls_held[i].mutex != mutex) continue;
    for (int j = i; j + 1 < tls_depth; ++j) tls_held[j] = tls_held[j + 1];
    --tls_depth;
    return;
  }
  std::fprintf(stderr,
               "[lock-rank] FATAL: releasing mutex %p this thread does not "
               "hold\n",
               mutex);
  std::abort();
}

size_t HeldDepth() { return static_cast<size_t>(tls_depth); }

}  // namespace lock_rank
}  // namespace nimble

#endif  // NIMBLE_LOCK_RANK_CHECKS
