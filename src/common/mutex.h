#ifndef NIMBLE_COMMON_MUTEX_H_
#define NIMBLE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace nimble {

/// Annotated exclusive mutex: a `std::mutex` that (a) is a Clang
/// thread-safety *capability*, so `NIMBLE_GUARDED_BY(mu_)` members and
/// `NIMBLE_REQUIRES(mu_)` methods are checked at compile time, and (b)
/// carries a `LockRank` checked on every acquisition in debug builds, so
/// lock-order cycles abort deterministically (see common/lock_rank.h).
///
/// Release builds carry only the rank/name words; locking cost is exactly
/// `std::mutex`. Always prefer the RAII guards below over manual
/// Lock/Unlock.
class NIMBLE_CAPABILITY("mutex") Mutex {
 public:
  /// `name` must be a string literal (stored, not copied); it appears in
  /// lock-rank violation reports.
  explicit Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NIMBLE_ACQUIRE() {
    // Rank/re-entry checks run BEFORE blocking: a would-deadlock
    // acquisition aborts with a report instead of hanging forever.
    lock_rank::OnAcquire(rank_, name_, this);
    mu_.lock();
  }
  void Unlock() NIMBLE_RELEASE() {
    lock_rank::OnRelease(this);
    mu_.unlock();
  }

  /// Tells the analysis this mutex is held on paths it cannot see (e.g.
  /// after a CondVar wait loop structured across helpers). No-op at runtime.
  void AssertHeld() const NIMBLE_ASSERT_CAPABILITY(this) {}

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// Annotated reader/writer mutex over `std::shared_mutex`. Shared
/// acquisitions participate in lock-rank checking exactly like exclusive
/// ones (two shared holds of the *same* lock on one thread still abort:
/// writer-priority implementations can deadlock that pattern).
class NIMBLE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() NIMBLE_ACQUIRE() {
    lock_rank::OnAcquire(rank_, name_, this);  // before blocking, as above
    mu_.lock();
  }
  void Unlock() NIMBLE_RELEASE() {
    lock_rank::OnRelease(this);
    mu_.unlock();
  }
  void LockShared() NIMBLE_ACQUIRE_SHARED() {
    lock_rank::OnAcquire(rank_, name_, this);
    mu_.lock_shared();
  }
  void UnlockShared() NIMBLE_RELEASE_SHARED() {
    lock_rank::OnRelease(this);
    mu_.unlock_shared();
  }

  void AssertHeld() const NIMBLE_ASSERT_CAPABILITY(this) {}

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// RAII exclusive guard (the `std::lock_guard` replacement).
class NIMBLE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NIMBLE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() NIMBLE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive guard over a SharedMutex.
class NIMBLE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) NIMBLE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() NIMBLE_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) guard over a SharedMutex.
class NIMBLE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) NIMBLE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() NIMBLE_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to the annotated Mutex. There is deliberately
/// no predicate overload: Clang's analysis cannot see a lambda body run
/// under the caller's lock, so call sites spell the standard loop
///
///     MutexLock lock(mu_);
///     while (!ready_) cv_.Wait(mu_);
///
/// which keeps every guarded read visible to the checker.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires before returning. The
  /// release/reacquire is mirrored into the lock-rank registry, so waking
  /// up re-checks rank order against whatever the thread still holds.
  void Wait(Mutex& mu) NIMBLE_REQUIRES(mu) {
    lock_rank::OnRelease(&mu);
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership returns to the caller's guard
    // Reacquired while asleep: re-register (and re-check rank against
    // whatever the thread still holds) without re-locking.
    lock_rank::OnAcquire(mu.rank_, mu.name_, &mu);
  }

  /// Timed Wait: returns false when `timeout_micros` of wall time elapsed
  /// without a notification (spurious wakeups return true; callers loop on
  /// their predicate either way). Wall time deliberately — the waiter is
  /// bounding how long a *thread* blocks, which no VirtualClock advances.
  bool WaitFor(Mutex& mu, int64_t timeout_micros) NIMBLE_REQUIRES(mu) {
    lock_rank::OnRelease(&mu);
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status =
        cv_.wait_for(lock, std::chrono::microseconds(timeout_micros));
    lock.release();  // ownership returns to the caller's guard
    lock_rank::OnAcquire(mu.rank_, mu.name_, &mu);
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace nimble

#endif  // NIMBLE_COMMON_MUTEX_H_
