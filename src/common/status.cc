#include "common/status.h"

namespace nimble {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace nimble
