#include "connector/relational_connector.h"

namespace nimble {
namespace connector {

SourceCapabilities RelationalConnector::capabilities() const {
  SourceCapabilities caps;
  caps.supports_sql = true;
  caps.supports_predicates = true;
  caps.supports_joins = true;
  caps.supports_aggregates = true;
  // The catalog walk below must not race with DDL through ExecuteSql.
  ReaderMutexLock lock(db_mutex_);
  for (const std::string& table_name : db_->TableNames()) {
    const relational::Table* table = db_->GetTable(table_name);
    for (const auto& index : table->indexes()) {
      caps.indexed_columns.emplace_back(
          table_name, table->schema().columns()[index->column()].name);
    }
  }
  return caps;
}

std::vector<std::string> RelationalConnector::Collections() {
  ReaderMutexLock lock(db_mutex_);
  return db_->TableNames();
}

uint64_t RelationalConnector::DataVersion() {
  ReaderMutexLock lock(db_mutex_);
  return db_->Version();
}

NodePtr RelationalConnector::ResultSetToXml(const relational::ResultSet& rs,
                                            const std::string& root_name,
                                            const std::string& record_name) {
  NodePtr root = Node::Element(root_name);
  for (const relational::Row& row : rs.rows) {
    NodePtr record = Node::Element(record_name);
    for (size_t i = 0; i < rs.columns.size() && i < row.size(); ++i) {
      record->AddScalarChild(rs.columns[i], row[i]);
    }
    root->AddChild(std::move(record));
  }
  return root;
}

Result<NodePtr> RelationalConnector::FetchCollection(
    const std::string& collection, const RequestContext& ctx) {
  NIMBLE_RETURN_IF_ERROR(Admit(ctx));
  // A collection fetch is SELECT * in disguise; emit the XML records
  // straight from the table's column arrays instead of routing through the
  // SQL executor and materializing an intermediate ResultSet row per record.
  NodePtr root = Node::Element(collection);
  size_t shipped = 0;
  {
    ReaderMutexLock lock(db_mutex_);
    const relational::Table* table = db_->GetTable(collection);
    if (table == nullptr) {
      return Status::NotFound("no table '" + collection + "' in database '" +
                              db_->name() + "'");
    }
    const std::vector<relational::Column>& columns = table->schema().columns();
    table->ForEachLiveRow([&](size_t id) {
      NodePtr record = Node::Element("row");
      for (size_t c = 0; c < columns.size(); ++c) {
        record->AddScalarChild(columns[c].name, table->at(id, c));
      }
      root->AddChild(std::move(record));
      ++shipped;
    });
  }
  FetchStats delta;
  delta.calls = 1;
  delta.rows_shipped = shipped;
  AddStats(ctx, delta);
  return root;
}

namespace {

/// True when `sql` is a plain read (leading keyword SELECT) and can run
/// under a shared lock; everything else gets the exclusive lock.
bool IsSelect(const std::string& sql) {
  size_t i = sql.find_first_not_of(" \t\r\n");
  if (i == std::string::npos) return false;
  static constexpr char kSelect[] = "select";
  for (size_t k = 0; k < 6; ++k) {
    if (i + k >= sql.size()) return false;
    char c = sql[i + k];
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (c != kSelect[k]) return false;
  }
  return true;
}

}  // namespace

Result<relational::ResultSet> RelationalConnector::ExecuteSql(
    const std::string& sql, const RequestContext& ctx) {
  NIMBLE_RETURN_IF_ERROR(Admit(ctx));
  relational::ResultSet rs;
  if (IsSelect(sql)) {
    ReaderMutexLock lock(db_mutex_);
    NIMBLE_ASSIGN_OR_RETURN(rs, db_->Execute(sql));
  } else {
    WriterMutexLock lock(db_mutex_);
    NIMBLE_ASSIGN_OR_RETURN(rs, db_->Execute(sql));
  }
  FetchStats delta;
  delta.calls = 1;
  delta.rows_shipped = rs.rows.size();
  AddStats(ctx, delta);
  return rs;
}

}  // namespace connector
}  // namespace nimble
