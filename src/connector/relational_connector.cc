#include "connector/relational_connector.h"

namespace nimble {
namespace connector {

SourceCapabilities RelationalConnector::capabilities() const {
  SourceCapabilities caps;
  caps.supports_sql = true;
  caps.supports_predicates = true;
  caps.supports_joins = true;
  caps.supports_aggregates = true;
  for (const std::string& table_name : db_->TableNames()) {
    const relational::Table* table = db_->GetTable(table_name);
    for (const auto& index : table->indexes()) {
      caps.indexed_columns.emplace_back(
          table_name, table->schema().columns()[index->column()].name);
    }
  }
  return caps;
}

std::vector<std::string> RelationalConnector::Collections() {
  return db_->TableNames();
}

NodePtr RelationalConnector::ResultSetToXml(const relational::ResultSet& rs,
                                            const std::string& root_name,
                                            const std::string& record_name) {
  NodePtr root = Node::Element(root_name);
  for (const relational::Row& row : rs.rows) {
    NodePtr record = Node::Element(record_name);
    for (size_t i = 0; i < rs.columns.size() && i < row.size(); ++i) {
      record->AddScalarChild(rs.columns[i], row[i]);
    }
    root->AddChild(std::move(record));
  }
  return root;
}

Result<NodePtr> RelationalConnector::FetchCollection(
    const std::string& collection) {
  relational::SelectStmt all;
  all.select_star = true;
  all.from.table = collection;
  NIMBLE_ASSIGN_OR_RETURN(relational::ResultSet rs, db_->Query(all));
  ++stats_.calls;
  stats_.rows_shipped += rs.rows.size();
  return ResultSetToXml(rs, collection, "row");
}

Result<relational::ResultSet> RelationalConnector::ExecuteSql(
    const std::string& sql) {
  NIMBLE_ASSIGN_OR_RETURN(relational::ResultSet rs, db_->Execute(sql));
  ++stats_.calls;
  stats_.rows_shipped += rs.rows.size();
  return rs;
}

}  // namespace connector
}  // namespace nimble
