#include "connector/hierarchical_connector.h"

namespace nimble {
namespace connector {

std::vector<std::string> HierarchicalConnector::Collections() {
  ReaderMutexLock lock(map_mutex_);
  std::vector<std::string> names;
  names.reserve(collection_paths_.size());
  for (const auto& [collection, path] : collection_paths_) {
    names.push_back(collection);
  }
  return names;
}

Result<NodePtr> HierarchicalConnector::FetchCollection(
    const std::string& collection, const RequestContext& ctx) {
  NIMBLE_RETURN_IF_ERROR(Admit(ctx));
  std::string base_path;
  {
    ReaderMutexLock lock(map_mutex_);
    auto it = collection_paths_.find(collection);
    if (it == collection_paths_.end()) {
      return Status::NotFound("source '" + name_ + "' has no collection '" +
                              collection + "'");
    }
    base_path = it->second;
  }
  NIMBLE_ASSIGN_OR_RETURN(NodePtr tree, store_->ExportXml(base_path));
  FetchStats delta;
  delta.calls = 1;
  delta.rows_shipped = tree->SubtreeSize();
  AddStats(ctx, delta);
  return tree;
}

void HierarchicalConnector::MapCollection(const std::string& collection_name,
                                          const std::string& base_path) {
  WriterMutexLock lock(map_mutex_);
  collection_paths_[collection_name] = base_path;
}

}  // namespace connector
}  // namespace nimble
