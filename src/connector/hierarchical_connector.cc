#include "connector/hierarchical_connector.h"

namespace nimble {
namespace connector {

std::vector<std::string> HierarchicalConnector::Collections() {
  std::vector<std::string> names;
  names.reserve(collection_paths_.size());
  for (const auto& [collection, path] : collection_paths_) {
    names.push_back(collection);
  }
  return names;
}

Result<NodePtr> HierarchicalConnector::FetchCollection(
    const std::string& collection) {
  auto it = collection_paths_.find(collection);
  if (it == collection_paths_.end()) {
    return Status::NotFound("source '" + name_ + "' has no collection '" +
                            collection + "'");
  }
  NIMBLE_ASSIGN_OR_RETURN(NodePtr tree, store_->ExportXml(it->second));
  ++stats_.calls;
  stats_.rows_shipped += tree->SubtreeSize();
  return tree;
}

void HierarchicalConnector::MapCollection(const std::string& collection_name,
                                          const std::string& base_path) {
  collection_paths_[collection_name] = base_path;
}

}  // namespace connector
}  // namespace nimble
