#include "connector/xml_connector.h"

#include "xml/parser.h"

namespace nimble {
namespace connector {

std::vector<std::string> XmlConnector::Collections() {
  ReaderMutexLock lock(doc_mutex_);
  std::vector<std::string> names;
  names.reserve(documents_.size());
  for (const auto& [doc_name, doc] : documents_) names.push_back(doc_name);
  return names;
}

Result<NodePtr> XmlConnector::FetchCollection(const std::string& collection,
                                              const RequestContext& ctx) {
  NIMBLE_RETURN_IF_ERROR(Admit(ctx));
  NodePtr clone;
  {
    ReaderMutexLock lock(doc_mutex_);
    auto it = documents_.find(collection);
    if (it == documents_.end()) {
      return Status::NotFound("source '" + name_ + "' has no document '" +
                              collection + "'");
    }
    clone = it->second->Clone();
  }
  FetchStats delta;
  delta.calls = 1;
  delta.rows_shipped = clone->children().size();
  AddStats(ctx, delta);
  return clone;
}

void XmlConnector::PutDocument(const std::string& doc_name, NodePtr document) {
  WriterMutexLock lock(doc_mutex_);
  documents_[doc_name] = std::move(document);
  ++version_;
}

Status XmlConnector::PutDocumentText(const std::string& doc_name,
                                     const std::string& xml_text) {
  NIMBLE_ASSIGN_OR_RETURN(NodePtr doc, ParseXml(xml_text));
  PutDocument(doc_name, std::move(doc));
  return Status::OK();
}

bool XmlConnector::RemoveDocument(const std::string& doc_name) {
  WriterMutexLock lock(doc_mutex_);
  if (documents_.erase(doc_name) == 0) return false;
  ++version_;
  return true;
}

NodePtr XmlConnector::MutableDocument(const std::string& doc_name) {
  WriterMutexLock lock(doc_mutex_);
  auto it = documents_.find(doc_name);
  if (it == documents_.end()) return nullptr;
  ++version_;
  return it->second;
}

}  // namespace connector
}  // namespace nimble
