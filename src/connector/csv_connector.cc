#include "connector/csv_connector.h"

#include "common/strings.h"

namespace nimble {
namespace connector {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Status CsvConnector::PutCsv(const std::string& collection_name,
                            const std::string& csv_text) {
  std::vector<std::string> lines = Split(csv_text, '\n');
  if (lines.empty() || Trim(lines[0]).empty()) {
    return Status::InvalidArgument("CSV requires a header row");
  }
  std::vector<std::string> headers = SplitCsvLine(Trim(lines[0]));
  NodePtr root = Node::Element(collection_name);
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string line = Trim(lines[i]);
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != headers.size()) {
      return Status::ParseError("CSV row " + std::to_string(i) + " has " +
                                std::to_string(fields.size()) + " fields, " +
                                "header has " +
                                std::to_string(headers.size()));
    }
    NodePtr row = Node::Element("row");
    for (size_t f = 0; f < fields.size(); ++f) {
      row->AddScalarChild(headers[f], Value::Infer(fields[f]));
    }
    root->AddChild(std::move(row));
  }
  WriterMutexLock lock(mutex_);
  collections_[collection_name] = std::move(root);
  ++version_;
  return Status::OK();
}

std::vector<std::string> CsvConnector::Collections() {
  ReaderMutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [collection, doc] : collections_) {
    names.push_back(collection);
  }
  return names;
}

Result<NodePtr> CsvConnector::FetchCollection(const std::string& collection,
                                              const RequestContext& ctx) {
  NIMBLE_RETURN_IF_ERROR(Admit(ctx));
  NodePtr clone;
  {
    ReaderMutexLock lock(mutex_);
    auto it = collections_.find(collection);
    if (it == collections_.end()) {
      return Status::NotFound("source '" + name_ + "' has no collection '" +
                              collection + "'");
    }
    clone = it->second->Clone();
  }
  FetchStats delta;
  delta.calls = 1;
  delta.rows_shipped = clone->children().size();
  AddStats(ctx, delta);
  return clone;
}

}  // namespace connector
}  // namespace nimble
