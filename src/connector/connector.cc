#include "connector/connector.h"

namespace nimble {
namespace connector {

Result<relational::ResultSet> Connector::ExecuteSql(const std::string& sql,
                                                    const RequestContext& ctx) {
  (void)sql;
  (void)ctx;
  return Status::Unsupported("source '" + name() + "' does not accept SQL");
}

}  // namespace connector
}  // namespace nimble
