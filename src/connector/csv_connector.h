#ifndef NIMBLE_CONNECTOR_CSV_CONNECTOR_H_
#define NIMBLE_CONNECTOR_CSV_CONNECTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "connector/connector.h"

namespace nimble {
namespace connector {

/// Serves flat files (CSV with a header row) as record collections — the
/// "legacy flat file" source class. Fields are type-inferred on ingest,
/// quoted fields ("a,b" and doubled "" escapes) are supported.
class CsvConnector : public Connector {
 public:
  explicit CsvConnector(std::string source_name)
      : name_(std::move(source_name)) {}

  const std::string& name() const override { return name_; }
  SourceCapabilities capabilities() const override {
    return SourceCapabilities{};
  }
  std::vector<std::string> Collections() override;
  using Connector::FetchCollection;
  Result<NodePtr> FetchCollection(const std::string& collection,
                                  const RequestContext& ctx) override;
  uint64_t DataVersion() override {
    ReaderMutexLock lock(mutex_);
    return version_;
  }

  /// Parses `csv_text` (header row + data rows) and registers it as
  /// `collection_name`. Each row becomes `<row><header>value</header>…</row>`.
  Status PutCsv(const std::string& collection_name,
                const std::string& csv_text);

 private:
  const std::string name_;
  /// Reads shared, PutCsv exclusive.
  mutable SharedMutex mutex_{LockRank::kConnectorData, "csv_connector.data"};
  std::map<std::string, NodePtr> collections_ NIMBLE_GUARDED_BY(mutex_);
  uint64_t version_ NIMBLE_GUARDED_BY(mutex_) = 0;
};

/// Splits one CSV line honouring quotes; exposed for tests.
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace connector
}  // namespace nimble

#endif  // NIMBLE_CONNECTOR_CSV_CONNECTOR_H_
