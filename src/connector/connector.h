#ifndef NIMBLE_CONNECTOR_CONNECTOR_H_
#define NIMBLE_CONNECTOR_CONNECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "relational/executor.h"
#include "xml/node.h"

namespace nimble {
namespace connector {

/// What a source can do, consulted by the mediator's compiler when deciding
/// how much of a query fragment to push down (paper §2.1: the compiler
/// considers "the type of the underlying source … and the presence of
/// indices"; §4: "an internal query optimizer that can address the varying
/// query capabilities of different data sources").
struct SourceCapabilities {
  bool supports_sql = false;         ///< accepts pushed-down SELECT text.
  bool supports_predicates = false;  ///< can filter inside the source.
  bool supports_joins = false;       ///< can join collections internally.
  bool supports_aggregates = false;
  /// (table, column) pairs with a source-side index.
  std::vector<std::pair<std::string, std::string>> indexed_columns;

  bool HasIndexOn(const std::string& table, const std::string& column) const {
    for (const auto& [t, c] : indexed_columns) {
      if (t == table && c == column) return true;
    }
    return false;
  }
};

/// Per-call transfer statistics, aggregated by the decorators and surfaced
/// in query execution reports (E3 measures rows shipped; E1/E5/E6 measure
/// latency).
struct FetchStats {
  size_t calls = 0;
  size_t rows_shipped = 0;   ///< records crossing the source boundary.
  int64_t latency_micros = 0;  ///< simulated wire+source time charged.

  void Add(const FetchStats& other) {
    calls += other.calls;
    rows_shipped += other.rows_shipped;
    latency_micros += other.latency_micros;
  }
  void Reset() { *this = FetchStats{}; }
};

/// Per-request execution context, threaded from the engine's
/// ExecutionContext down into every source call. Connectors check the
/// deadline and cancellation flag before doing work (cooperative
/// cancellation) and report the cost of *this call alone* through
/// `call_stats` — the cumulative per-connector counters cannot attribute
/// cost to a fragment once fetches run concurrently.
struct RequestContext {
  /// Cooperative cancellation flag owned by the query's ExecutionContext.
  const std::atomic<bool>* cancelled = nullptr;
  /// Absolute deadline on `clock` (0 = none).
  int64_t deadline_micros = 0;
  const Clock* clock = nullptr;
  /// When set, the connector adds this call's own cost here (thread-safe:
  /// the engine hands each fragment its own instance).
  FetchStats* call_stats = nullptr;
};

/// Abstract wrapper around one data source. All sources can serve their
/// collections as XML record trees (the unifying model, paper §1); SQL-
/// capable sources additionally accept pushed-down SELECT statements.
///
/// Thread-safety contract: `FetchCollection`, `ExecuteSql`, `Ping`,
/// `Collections`, `stats` and `ResetStats` may be called from any number of
/// threads concurrently (the engine fans fragments out over a pool).
/// Mutating registration/administration calls on concrete connectors
/// (PutDocument, PutCsv, MapCollection, direct Database/HStore writes) must
/// not race with in-flight queries unless the connector documents
/// otherwise.
class Connector {
 public:
  virtual ~Connector() = default;

  virtual const std::string& name() const = 0;
  virtual SourceCapabilities capabilities() const = 0;

  /// Liveness probe. Returns Unavailable when the source is offline —
  /// the engine's partial-results machinery (§3.4) keys off this code.
  virtual Status Ping() { return Status::OK(); }

  /// Names of the collections (tables, documents, subtrees) exposed.
  virtual std::vector<std::string> Collections() = 0;

  /// Fetches the entire collection as an XML tree whose children are the
  /// records. The caller owns the returned tree (sources return clones).
  virtual Result<NodePtr> FetchCollection(const std::string& collection,
                                          const RequestContext& ctx) = 0;
  Result<NodePtr> FetchCollection(const std::string& collection) {
    return FetchCollection(collection, RequestContext{});
  }

  /// Executes pushed-down SQL. Default: unsupported.
  virtual Result<relational::ResultSet> ExecuteSql(const std::string& sql,
                                                   const RequestContext& ctx);
  Result<relational::ResultSet> ExecuteSql(const std::string& sql) {
    return ExecuteSql(sql, RequestContext{});
  }

  /// Monotone data-version cookie for cache/materialization staleness.
  virtual uint64_t DataVersion() = 0;

  /// Snapshot of cumulative transfer statistics since the last ResetStats().
  virtual FetchStats stats() const NIMBLE_EXCLUDES(stats_mutex_) {
    MutexLock lock(stats_mutex_);
    return stats_;
  }
  virtual void ResetStats() NIMBLE_EXCLUDES(stats_mutex_) {
    MutexLock lock(stats_mutex_);
    stats_.Reset();
  }

 protected:
  /// Pre-flight check shared by all connectors: trips on cooperative
  /// cancellation or an expired deadline before any source work is done.
  static Status Admit(const RequestContext& ctx) {
    if (ctx.cancelled != nullptr &&
        ctx.cancelled->load(std::memory_order_relaxed)) {
      return Status::Cancelled("request cancelled before source call");
    }
    if (ctx.deadline_micros > 0 && ctx.clock != nullptr &&
        ctx.clock->NowMicros() >= ctx.deadline_micros) {
      return Status::Timeout("query deadline exceeded before source call");
    }
    return Status::OK();
  }

  /// Thread-safe accumulation into the cumulative counters and, when the
  /// caller asked for per-call attribution, into `ctx.call_stats`.
  void AddStats(const RequestContext& ctx, const FetchStats& delta)
      NIMBLE_EXCLUDES(stats_mutex_) {
    {
      MutexLock lock(stats_mutex_);
      stats_.Add(delta);
    }
    if (ctx.call_stats != nullptr) ctx.call_stats->Add(delta);
  }

  /// Innermost lock of the connector stack (rank kConnectorStats): held
  /// only for the counter bump, never across source work.
  mutable Mutex stats_mutex_{LockRank::kConnectorStats, "connector.stats"};
  FetchStats stats_ NIMBLE_GUARDED_BY(stats_mutex_);
};

}  // namespace connector
}  // namespace nimble

#endif  // NIMBLE_CONNECTOR_CONNECTOR_H_
