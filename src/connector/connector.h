#ifndef NIMBLE_CONNECTOR_CONNECTOR_H_
#define NIMBLE_CONNECTOR_CONNECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/executor.h"
#include "xml/node.h"

namespace nimble {
namespace connector {

/// What a source can do, consulted by the mediator's compiler when deciding
/// how much of a query fragment to push down (paper §2.1: the compiler
/// considers "the type of the underlying source … and the presence of
/// indices"; §4: "an internal query optimizer that can address the varying
/// query capabilities of different data sources").
struct SourceCapabilities {
  bool supports_sql = false;         ///< accepts pushed-down SELECT text.
  bool supports_predicates = false;  ///< can filter inside the source.
  bool supports_joins = false;       ///< can join collections internally.
  bool supports_aggregates = false;
  /// (table, column) pairs with a source-side index.
  std::vector<std::pair<std::string, std::string>> indexed_columns;

  bool HasIndexOn(const std::string& table, const std::string& column) const {
    for (const auto& [t, c] : indexed_columns) {
      if (t == table && c == column) return true;
    }
    return false;
  }
};

/// Per-call transfer statistics, aggregated by the decorators and surfaced
/// in query execution reports (E3 measures rows shipped; E1/E5/E6 measure
/// latency).
struct FetchStats {
  size_t calls = 0;
  size_t rows_shipped = 0;   ///< records crossing the source boundary.
  int64_t latency_micros = 0;  ///< simulated wire+source time charged.

  void Add(const FetchStats& other) {
    calls += other.calls;
    rows_shipped += other.rows_shipped;
    latency_micros += other.latency_micros;
  }
  void Reset() { *this = FetchStats{}; }
};

/// Abstract wrapper around one data source. All sources can serve their
/// collections as XML record trees (the unifying model, paper §1); SQL-
/// capable sources additionally accept pushed-down SELECT statements.
class Connector {
 public:
  virtual ~Connector() = default;

  virtual const std::string& name() const = 0;
  virtual SourceCapabilities capabilities() const = 0;

  /// Liveness probe. Returns Unavailable when the source is offline —
  /// the engine's partial-results machinery (§3.4) keys off this code.
  virtual Status Ping() { return Status::OK(); }

  /// Names of the collections (tables, documents, subtrees) exposed.
  virtual std::vector<std::string> Collections() = 0;

  /// Fetches the entire collection as an XML tree whose children are the
  /// records. The caller owns the returned tree (sources return clones).
  virtual Result<NodePtr> FetchCollection(const std::string& collection) = 0;

  /// Executes pushed-down SQL. Default: unsupported.
  virtual Result<relational::ResultSet> ExecuteSql(const std::string& sql);

  /// Monotone data-version cookie for cache/materialization staleness.
  virtual uint64_t DataVersion() = 0;

  /// Cumulative transfer statistics since the last ResetStats().
  virtual const FetchStats& stats() const { return stats_; }
  virtual void ResetStats() { stats_.Reset(); }

 protected:
  FetchStats stats_;
};

}  // namespace connector
}  // namespace nimble

#endif  // NIMBLE_CONNECTOR_CONNECTOR_H_
