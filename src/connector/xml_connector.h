#ifndef NIMBLE_CONNECTOR_XML_CONNECTOR_H_
#define NIMBLE_CONNECTOR_XML_CONNECTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "connector/connector.h"

namespace nimble {
namespace connector {

/// Serves a set of named XML documents — the "native XML" source class the
/// paper's market (data interchange via XML, §1) centres on. Documents are
/// registered programmatically or parsed from text.
///
/// Reads (Collections/FetchCollection) take a shared lock and may run
/// concurrently; Put* take an exclusive lock. MutableDocument hands out a
/// live tree — mutating it is NOT safe while queries are in flight.
class XmlConnector : public Connector {
 public:
  explicit XmlConnector(std::string source_name)
      : name_(std::move(source_name)) {}

  const std::string& name() const override { return name_; }
  SourceCapabilities capabilities() const override {
    return SourceCapabilities{};  // bare document server; mediator does all work
  }
  std::vector<std::string> Collections() override;
  using Connector::FetchCollection;
  Result<NodePtr> FetchCollection(const std::string& collection,
                                  const RequestContext& ctx) override;
  uint64_t DataVersion() override {
    ReaderMutexLock lock(doc_mutex_);
    return version_;
  }

  /// Registers (or replaces) a document under `doc_name`.
  void PutDocument(const std::string& doc_name, NodePtr document);

  /// Parses `xml_text` and registers it.
  Status PutDocumentText(const std::string& doc_name,
                         const std::string& xml_text);

  /// Mutable access for update simulations (bumps the data version).
  NodePtr MutableDocument(const std::string& doc_name);

  /// Drops a document (bumps the data version). Returns true when it
  /// existed. Simulates a source-side schema change: plans compiled while
  /// the document existed become stale.
  bool RemoveDocument(const std::string& doc_name);

 private:
  const std::string name_;
  mutable SharedMutex doc_mutex_{LockRank::kConnectorData, "xml_connector.docs"};
  std::map<std::string, NodePtr> documents_ NIMBLE_GUARDED_BY(doc_mutex_);
  uint64_t version_ NIMBLE_GUARDED_BY(doc_mutex_) = 0;
};

}  // namespace connector
}  // namespace nimble

#endif  // NIMBLE_CONNECTOR_XML_CONNECTOR_H_
