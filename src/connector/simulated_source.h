#ifndef NIMBLE_CONNECTOR_SIMULATED_SOURCE_H_
#define NIMBLE_CONNECTOR_SIMULATED_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "connector/connector.h"

namespace nimble {
namespace connector {

/// Behavioural knobs for a simulated remote source (see DESIGN.md
/// substitutions: stands in for WAN latency and flaky corporate sources).
struct SimulationConfig {
  int64_t fixed_latency_micros = 0;    ///< per-request round-trip cost.
  int64_t per_row_latency_micros = 0;  ///< bandwidth: cost per shipped row.
  double availability = 1.0;           ///< P(request succeeds), per request.
  uint64_t seed = 1;                   ///< drives the availability draw.
};

/// Decorator that makes any connector behave like a remote, possibly
/// unavailable source. Latency is charged to a Clock (a VirtualClock in
/// benchmarks, so runs are fast and deterministic; a RealClock in demos).
/// Availability can be driven probabilistically (per request) or forced
/// with SetOnline for scripted outages.
class SimulatedSource : public Connector {
 public:
  /// `inner` is owned; `clock` must outlive the connector.
  SimulatedSource(std::unique_ptr<Connector> inner, SimulationConfig config,
                  Clock* clock)
      : inner_(std::move(inner)),
        config_(config),
        clock_(clock),
        rng_(config.seed) {}

  const std::string& name() const override { return inner_->name(); }
  SourceCapabilities capabilities() const override {
    return inner_->capabilities();
  }

  Status Ping() override;
  std::vector<std::string> Collections() override {
    return inner_->Collections();
  }
  Result<NodePtr> FetchCollection(const std::string& collection) override;
  Result<relational::ResultSet> ExecuteSql(const std::string& sql) override;
  uint64_t DataVersion() override { return inner_->DataVersion(); }

  const FetchStats& stats() const override { return stats_; }
  void ResetStats() override {
    stats_.Reset();
    inner_->ResetStats();
  }

  /// Forces the source on/offline, overriding the availability probability
  /// until ClearForcedState().
  void SetOnline(bool online) {
    forced_ = true;
    online_ = online;
  }
  void ClearForcedState() { forced_ = false; }

  Connector* inner() { return inner_.get(); }
  const SimulationConfig& config() const { return config_; }
  void set_config(const SimulationConfig& config) { config_ = config; }

 private:
  /// Draws availability and charges fixed latency; Unavailable on failure.
  Status AdmitRequest();
  void ChargeRows(size_t rows);

  std::unique_ptr<Connector> inner_;
  SimulationConfig config_;
  Clock* clock_;
  Rng rng_;
  bool forced_ = false;
  bool online_ = true;
};

}  // namespace connector
}  // namespace nimble

#endif  // NIMBLE_CONNECTOR_SIMULATED_SOURCE_H_
