#ifndef NIMBLE_CONNECTOR_SIMULATED_SOURCE_H_
#define NIMBLE_CONNECTOR_SIMULATED_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "connector/connector.h"

namespace nimble {
namespace connector {

/// Behavioural knobs for a simulated remote source (see DESIGN.md
/// substitutions: stands in for WAN latency and flaky corporate sources).
struct SimulationConfig {
  int64_t fixed_latency_micros = 0;    ///< per-request round-trip cost.
  int64_t per_row_latency_micros = 0;  ///< bandwidth: cost per shipped row.
  double availability = 1.0;           ///< P(request succeeds), per request.
  uint64_t seed = 1;                   ///< drives the availability draw.
};

/// Decorator that makes any connector behave like a remote, possibly
/// unavailable source. Latency is charged to a Clock (a VirtualClock in
/// benchmarks, so runs are fast and deterministic; a RealClock in demos —
/// with a RealClock, concurrent fragment fetches genuinely overlap their
/// sleeps, which is what bench E6(c) measures). Availability can be driven
/// probabilistically (per request), forced with SetOnline for scripted
/// outages, or scripted per-request with FailNextRequests for
/// deterministic retry tests.
///
/// Thread-safe: the availability draw, scripted-outage counters and stats
/// are mutex-guarded; the clock charge happens outside any lock so a
/// RealClock sleep never serialises concurrent fetches.
class SimulatedSource : public Connector {
 public:
  /// `inner` is owned; `clock` must outlive the connector.
  SimulatedSource(std::unique_ptr<Connector> inner, SimulationConfig config,
                  Clock* clock)
      : inner_(std::move(inner)),
        config_(config),
        clock_(clock),
        rng_(config.seed) {}

  const std::string& name() const override { return inner_->name(); }
  SourceCapabilities capabilities() const override {
    return inner_->capabilities();
  }

  Status Ping() override;
  std::vector<std::string> Collections() override {
    return inner_->Collections();
  }
  using Connector::FetchCollection;
  using Connector::ExecuteSql;
  Result<NodePtr> FetchCollection(const std::string& collection,
                                  const RequestContext& ctx) override;
  Result<relational::ResultSet> ExecuteSql(const std::string& sql,
                                           const RequestContext& ctx) override;
  uint64_t DataVersion() override { return inner_->DataVersion(); }

  void ResetStats() override {
    Connector::ResetStats();
    inner_->ResetStats();
  }

  /// Forces the source on/offline, overriding the availability probability
  /// until ClearForcedState().
  void SetOnline(bool online) {
    MutexLock lock(sim_mutex_);
    forced_ = true;
    online_ = online;
  }
  void ClearForcedState() {
    MutexLock lock(sim_mutex_);
    forced_ = false;
  }

  /// Scripted outage: the next `n` requests fail with Unavailable, then
  /// normal behaviour resumes. Deterministic — the backbone of the
  /// retry/backoff tests.
  void FailNextRequests(size_t n) {
    MutexLock lock(sim_mutex_);
    fail_next_ = n;
  }

  Connector* inner() { return inner_.get(); }
  SimulationConfig config() const {
    MutexLock lock(sim_mutex_);
    return config_;
  }
  void set_config(const SimulationConfig& config) {
    MutexLock lock(sim_mutex_);
    config_ = config;
  }

 private:
  /// Draws availability; Unavailable on failure. On success returns the
  /// fixed-latency cost to charge (charged by the caller outside the lock).
  Result<int64_t> AdmitRequest() NIMBLE_EXCLUDES(sim_mutex_);
  void ChargeRows(const RequestContext& ctx, size_t rows)
      NIMBLE_EXCLUDES(sim_mutex_);
  /// Builds the context forwarded to the wrapped connector: same deadline
  /// and cancellation flag, but no call_stats — the simulated wire charge,
  /// not the inner connector's bookkeeping, is this call's cost.
  static RequestContext InnerContext(const RequestContext& ctx) {
    RequestContext inner_ctx = ctx;
    inner_ctx.call_stats = nullptr;
    return inner_ctx;
  }

  const std::unique_ptr<Connector> inner_;
  /// Rank kSimulatedSource: released before the clock charge and before the
  /// inner connector runs, so a RealClock sleep never serialises fetches.
  mutable Mutex sim_mutex_{LockRank::kSimulatedSource, "simulated_source.sim"};
  SimulationConfig config_ NIMBLE_GUARDED_BY(sim_mutex_);
  Clock* const clock_;
  Rng rng_ NIMBLE_GUARDED_BY(sim_mutex_);
  bool forced_ NIMBLE_GUARDED_BY(sim_mutex_) = false;
  bool online_ NIMBLE_GUARDED_BY(sim_mutex_) = true;
  size_t fail_next_ NIMBLE_GUARDED_BY(sim_mutex_) = 0;
};

}  // namespace connector
}  // namespace nimble

#endif  // NIMBLE_CONNECTOR_SIMULATED_SOURCE_H_
