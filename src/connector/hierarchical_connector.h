#ifndef NIMBLE_CONNECTOR_HIERARCHICAL_CONNECTOR_H_
#define NIMBLE_CONNECTOR_HIERARCHICAL_CONNECTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "connector/connector.h"
#include "hierarchical/hstore.h"

namespace nimble {
namespace connector {

/// Wraps a hierarchical::HStore. Collections are named exported subtrees:
/// register "staff" -> "/corp/people" and the mediator sees one XML tree
/// per mapping (the paper's directory-style legacy sources).
///
/// Fetches take a shared lock (concurrent queries export concurrently);
/// MapCollection takes an exclusive lock. Direct HStore writes must not
/// race with in-flight queries.
class HierarchicalConnector : public Connector {
 public:
  /// `store` must outlive the connector.
  HierarchicalConnector(std::string source_name, hierarchical::HStore* store)
      : name_(std::move(source_name)), store_(store) {}

  const std::string& name() const override { return name_; }
  SourceCapabilities capabilities() const override {
    SourceCapabilities caps;
    caps.supports_predicates = true;  // HStore::Search filters server-side
    return caps;
  }
  std::vector<std::string> Collections() override;
  using Connector::FetchCollection;
  Result<NodePtr> FetchCollection(const std::string& collection,
                                  const RequestContext& ctx) override;
  uint64_t DataVersion() override { return store_->version(); }

  /// Maps `collection_name` to the subtree rooted at `base_path`.
  void MapCollection(const std::string& collection_name,
                     const std::string& base_path);

  hierarchical::HStore* store() { return store_; }

 private:
  const std::string name_;
  hierarchical::HStore* const store_;
  mutable SharedMutex map_mutex_{LockRank::kConnectorData,
                                 "hierarchical_connector.map"};
  std::map<std::string, std::string> collection_paths_
      NIMBLE_GUARDED_BY(map_mutex_);
};

}  // namespace connector
}  // namespace nimble

#endif  // NIMBLE_CONNECTOR_HIERARCHICAL_CONNECTOR_H_
