#include "connector/simulated_source.h"

namespace nimble {
namespace connector {

Status SimulatedSource::AdmitRequest() {
  bool up = forced_ ? online_ : rng_.Bernoulli(config_.availability);
  if (!up) {
    return Status::Unavailable("source '" + name() + "' is offline");
  }
  clock_->AdvanceMicros(config_.fixed_latency_micros);
  stats_.latency_micros += config_.fixed_latency_micros;
  ++stats_.calls;
  return Status::OK();
}

void SimulatedSource::ChargeRows(size_t rows) {
  int64_t cost = static_cast<int64_t>(rows) * config_.per_row_latency_micros;
  clock_->AdvanceMicros(cost);
  stats_.latency_micros += cost;
  stats_.rows_shipped += rows;
}

Status SimulatedSource::Ping() {
  bool up = forced_ ? online_ : rng_.Bernoulli(config_.availability);
  if (!up) {
    return Status::Unavailable("source '" + name() + "' is offline");
  }
  return Status::OK();
}

Result<NodePtr> SimulatedSource::FetchCollection(
    const std::string& collection) {
  NIMBLE_RETURN_IF_ERROR(AdmitRequest());
  NIMBLE_ASSIGN_OR_RETURN(NodePtr tree, inner_->FetchCollection(collection));
  ChargeRows(tree->children().size());
  return tree;
}

Result<relational::ResultSet> SimulatedSource::ExecuteSql(
    const std::string& sql) {
  NIMBLE_RETURN_IF_ERROR(AdmitRequest());
  NIMBLE_ASSIGN_OR_RETURN(relational::ResultSet rs, inner_->ExecuteSql(sql));
  ChargeRows(rs.rows.size());
  return rs;
}

}  // namespace connector
}  // namespace nimble
