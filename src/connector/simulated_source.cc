#include "connector/simulated_source.h"

namespace nimble {
namespace connector {

Result<int64_t> SimulatedSource::AdmitRequest() {
  MutexLock lock(sim_mutex_);
  if (fail_next_ > 0) {
    --fail_next_;
    return Status::Unavailable("source '" + name() + "' is offline");
  }
  bool up = forced_ ? online_ : rng_.Bernoulli(config_.availability);
  if (!up) {
    return Status::Unavailable("source '" + name() + "' is offline");
  }
  return config_.fixed_latency_micros;
}

void SimulatedSource::ChargeRows(const RequestContext& ctx, size_t rows) {
  int64_t per_row;
  {
    MutexLock lock(sim_mutex_);
    per_row = config_.per_row_latency_micros;
  }
  int64_t cost = static_cast<int64_t>(rows) * per_row;
  clock_->AdvanceMicros(cost);
  FetchStats delta;
  delta.rows_shipped = rows;
  delta.latency_micros = cost;
  AddStats(ctx, delta);
}

Status SimulatedSource::Ping() {
  MutexLock lock(sim_mutex_);
  bool up = forced_ ? online_ : rng_.Bernoulli(config_.availability);
  if (!up) {
    return Status::Unavailable("source '" + name() + "' is offline");
  }
  return Status::OK();
}

Result<NodePtr> SimulatedSource::FetchCollection(const std::string& collection,
                                                 const RequestContext& ctx) {
  NIMBLE_RETURN_IF_ERROR(Admit(ctx));
  NIMBLE_ASSIGN_OR_RETURN(int64_t admit_cost, AdmitRequest());
  clock_->AdvanceMicros(admit_cost);
  FetchStats delta;
  delta.calls = 1;
  delta.latency_micros = admit_cost;
  AddStats(ctx, delta);
  NIMBLE_ASSIGN_OR_RETURN(
      NodePtr tree, inner_->FetchCollection(collection, InnerContext(ctx)));
  ChargeRows(ctx, tree->children().size());
  return tree;
}

Result<relational::ResultSet> SimulatedSource::ExecuteSql(
    const std::string& sql, const RequestContext& ctx) {
  NIMBLE_RETURN_IF_ERROR(Admit(ctx));
  NIMBLE_ASSIGN_OR_RETURN(int64_t admit_cost, AdmitRequest());
  clock_->AdvanceMicros(admit_cost);
  FetchStats delta;
  delta.calls = 1;
  delta.latency_micros = admit_cost;
  AddStats(ctx, delta);
  NIMBLE_ASSIGN_OR_RETURN(relational::ResultSet rs,
                          inner_->ExecuteSql(sql, InnerContext(ctx)));
  ChargeRows(ctx, rs.rows.size());
  return rs;
}

}  // namespace connector
}  // namespace nimble
