#ifndef NIMBLE_CONNECTOR_RELATIONAL_CONNECTOR_H_
#define NIMBLE_CONNECTOR_RELATIONAL_CONNECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "connector/connector.h"
#include "relational/database.h"

namespace nimble {
namespace connector {

/// Wraps a relational::Database as a federated source. This is the "RDB"
/// endpoint of the paper: the mediator's compiler generates SQL text, this
/// connector parses and executes it in the source engine (so pushdown runs
/// the source's own planner and indexes — the real code path, per
/// DESIGN.md's substitution table).
///
/// Pushed-down SELECTs take a shared lock (concurrent reads); any other
/// statement (DDL/DML) takes an exclusive lock, so mutations through
/// ExecuteSql serialise against in-flight queries. Writes that bypass the
/// connector (direct Database access) must not race with queries.
class RelationalConnector : public Connector {
 public:
  /// `db` must outlive the connector.
  RelationalConnector(std::string source_name, relational::Database* db)
      : name_(std::move(source_name)), db_(db) {}

  const std::string& name() const override { return name_; }
  SourceCapabilities capabilities() const override;
  std::vector<std::string> Collections() override;
  using Connector::FetchCollection;
  using Connector::ExecuteSql;
  Result<NodePtr> FetchCollection(const std::string& collection,
                                  const RequestContext& ctx) override;
  Result<relational::ResultSet> ExecuteSql(const std::string& sql,
                                           const RequestContext& ctx) override;
  uint64_t DataVersion() override;

  relational::Database* database() { return db_; }

  /// Renders a ResultSet as an XML record tree:
  /// `<rows><row><col>v</col>…</row>…</rows>`.
  static NodePtr ResultSetToXml(const relational::ResultSet& rs,
                                const std::string& root_name = "rows",
                                const std::string& record_name = "row");

 private:
  const std::string name_;
  /// All reads of the database — including the catalog walks in
  /// capabilities()/Collections()/DataVersion() — hold db_mutex_ shared;
  /// DDL/DML through ExecuteSql holds it exclusive.
  relational::Database* db_ NIMBLE_PT_GUARDED_BY(db_mutex_);
  mutable SharedMutex db_mutex_{LockRank::kConnectorData,
                                "relational_connector.db"};
};

}  // namespace connector
}  // namespace nimble

#endif  // NIMBLE_CONNECTOR_RELATIONAL_CONNECTOR_H_
